module Codec = Ode_util.Codec
module Pool = Ode_storage.Buffer_pool
module Page = Ode_storage.Page

let magic = "ODEHASH1"
let max_entry = 1024
let max_buckets = (Page.data_end - 24) / 4
let split_threshold = 24 (* average entries per bucket before growing *)

(* Bucket pages are raw: [u32 next][u16 nentries][u16 used] then packed
   entries [u16 klen][u16 vlen][key][val]. *)
let bp_header = 8
let bp_capacity = Page.data_end - bp_header

type t = {
  pool : Pool.t;
  mutable level : int;
  mutable split : int;
  mutable count : int;
}

(* -- header ------------------------------------------------------------- *)

let get32 p off =
  Char.code (Bytes.get p off)
  lor (Char.code (Bytes.get p (off + 1)) lsl 8)
  lor (Char.code (Bytes.get p (off + 2)) lsl 16)
  lor (Char.code (Bytes.get p (off + 3)) lsl 24)

let set32 p off v =
  Bytes.set p off (Char.chr (v land 0xff));
  Bytes.set p (off + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set p (off + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set p (off + 3) (Char.chr ((v lsr 24) land 0xff))

let get16 p off = Char.code (Bytes.get p off) lor (Char.code (Bytes.get p (off + 1)) lsl 8)

let set16 p off v =
  Bytes.set p off (Char.chr (v land 0xff));
  Bytes.set p (off + 1) (Char.chr ((v lsr 8) land 0xff))

let write_header t =
  Pool.with_page t.pool 0 (fun f ->
      let d = Pool.data f in
      Bytes.blit_string magic 0 d 0 8;
      set32 d 8 t.level;
      set32 d 12 t.split;
      Bytes.set_int64_le d 16 (Int64.of_int t.count);
      Pool.mark_dirty t.pool f)

let bucket_dir_get t i = Pool.with_page t.pool 0 (fun f -> get32 (Pool.data f) (24 + (4 * i)))

let bucket_dir_set t i page =
  Pool.with_page t.pool 0 (fun f ->
      set32 (Pool.data f) (24 + (4 * i)) page;
      Pool.mark_dirty t.pool f)

let nbuckets t = (1 lsl t.level) + t.split

let attach pool =
  if Pool.page_count pool = 0 then begin
    let f = Pool.allocate pool in
    assert (Pool.page_no f = 0);
    Bytes.fill (Pool.data f) 0 Page.size '\000';
    Pool.mark_dirty pool f;
    Pool.unpin pool f;
    let t = { pool; level = 0; split = 0; count = 0 } in
    write_header t;
    t
  end
  else
    Pool.with_page pool 0 (fun f ->
        let d = Pool.data f in
        if Bytes.sub_string d 0 8 <> magic then invalid_arg "hash_index: bad magic";
        {
          pool;
          level = get32 d 8;
          split = get32 d 12;
          count = Int64.to_int (Bytes.get_int64_le d 16);
        })

(* -- bucket pages ---------------------------------------------------------- *)

let bp_next d = get32 d 0
let bp_set_next d v = set32 d 0 v
let bp_nentries d = get16 d 4
let bp_used d = get16 d 6

let bp_reset d =
  Bytes.fill d 0 Page.size '\000';
  set16 d 6 0

let bp_entries d =
  let n = bp_nentries d in
  let entries = ref [] in
  let off = ref bp_header in
  for _ = 1 to n do
    let klen = get16 d !off in
    let vlen = get16 d (!off + 2) in
    let k = Bytes.sub_string d (!off + 4) klen in
    let v = Bytes.sub_string d (!off + 4 + klen) vlen in
    entries := (k, v) :: !entries;
    off := !off + 4 + klen + vlen
  done;
  List.rev !entries

let bp_write_entries d entries =
  let total =
    List.fold_left (fun acc (k, v) -> acc + 4 + String.length k + String.length v) 0 entries
  in
  assert (total <= bp_capacity);
  let next = bp_next d in
  bp_reset d;
  bp_set_next d next;
  let off = ref bp_header in
  List.iter
    (fun (k, v) ->
      set16 d !off (String.length k);
      set16 d (!off + 2) (String.length v);
      Bytes.blit_string k 0 d (!off + 4) (String.length k);
      Bytes.blit_string v 0 d (!off + 4 + String.length k) (String.length v);
      off := !off + 4 + String.length k + String.length v)
    entries;
  set16 d 4 (List.length entries);
  set16 d 6 (!off - bp_header)

let bp_room d entry_bytes = bp_capacity - bp_used d >= entry_bytes

(* -- hashing ----------------------------------------------------------------- *)

let bucket_of t key =
  (* Keep 62 bits so the hash is a non-negative OCaml int. *)
  let h = Int64.to_int (Int64.shift_right_logical (Codec.fnv64 key) 2) in
  let b = h mod (1 lsl t.level) in
  if b < t.split then h mod (1 lsl (t.level + 1)) else b

let alloc_bucket_page t =
  let f = Pool.allocate t.pool in
  let page = Pool.page_no f in
  bp_reset (Pool.data f);
  Pool.mark_dirty t.pool f;
  Pool.unpin t.pool f;
  page

(* Collect every entry of a bucket chain; return also the chain's pages. *)
let chain_entries t first =
  let entries = ref [] and pages = ref [] in
  let rec go page =
    if page <> 0 then begin
      pages := page :: !pages;
      let next =
        Pool.with_page t.pool page (fun f ->
            entries := bp_entries (Pool.data f) @ !entries;
            bp_next (Pool.data f))
      in
      go next
    end
  in
  go first;
  (List.rev !entries, List.rev !pages)

(* Rewrite a chain to hold exactly [entries], reusing [pages] and extending
   if needed; returns the chain head (0 when both are empty). *)
let write_chain t pages entries =
  let entry_bytes (k, v) = 4 + String.length k + String.length v in
  (* Greedy packing into pages. *)
  let rec pack groups current size = function
    | [] -> List.rev (if current = [] then groups else List.rev current :: groups)
    | e :: rest ->
        let b = entry_bytes e in
        if size + b > bp_capacity && current <> [] then
          pack (List.rev current :: groups) [ e ] b rest
        else pack groups (e :: current) (size + b) rest
  in
  let groups = pack [] [] 0 entries in
  let rec ensure_pages pages n =
    if n <= List.length pages then pages else ensure_pages (pages @ [ alloc_bucket_page t ]) n
  in
  let pages = ensure_pages pages (max 1 (List.length groups)) in
  let rec fill pages groups =
    match (pages, groups) with
    | [], _ -> ()
    | page :: prest, g ->
        let group, grest = match g with [] -> ([], []) | x :: r -> (x, r) in
        let next = match (prest, grest) with _ :: _, _ :: _ -> List.hd prest | _, [] -> 0 | [], _ -> 0 in
        Pool.with_page t.pool page (fun f ->
            let d = Pool.data f in
            bp_write_entries d group;
            bp_set_next d next;
            Pool.mark_dirty t.pool f);
        fill (if grest = [] then [] else prest) grest
  in
  fill pages groups;
  match pages with p :: _ -> p | [] -> 0

(* -- growth -------------------------------------------------------------------- *)

let maybe_split t =
  if nbuckets t < max_buckets && t.count > split_threshold * nbuckets t then begin
    let victim = t.split in
    let buddy = (1 lsl t.level) + t.split in
    let head = bucket_dir_get t victim in
    let entries, pages = chain_entries t head in
    t.split <- t.split + 1;
    if t.split = 1 lsl t.level then begin
      t.level <- t.level + 1;
      t.split <- 0
    end;
    let keep, move =
      List.partition (fun (k, _) -> bucket_of t k = victim) entries
    in
    let head' = write_chain t pages keep in
    bucket_dir_set t victim head';
    let bhead = bucket_dir_get t buddy in
    let bentries, bpages = chain_entries t bhead in
    let bhead' = write_chain t bpages (bentries @ move) in
    bucket_dir_set t buddy bhead';
    write_header t
  end

(* -- public -------------------------------------------------------------------- *)

let find t key =
  Ode_util.Stats.incr_index_probes ();
  let rec go page =
    if page = 0 then None
    else
      let hit, next =
        Pool.with_page t.pool page (fun f ->
            let d = Pool.data f in
            (List.assoc_opt key (bp_entries d), bp_next d))
      in
      match hit with Some v -> Some v | None -> go next
  in
  go (bucket_dir_get t (bucket_of t key))

let mem t key = find t key <> None

let insert t key value =
  if key = "" then invalid_arg "hash_index: empty key";
  if 4 + String.length key + String.length value > max_entry then
    invalid_arg "hash_index: entry too large";
  Ode_util.Stats.incr_index_probes ();
  let b = bucket_of t key in
  let head = bucket_dir_get t b in
  let entry_bytes = 4 + String.length key + String.length value in
  (* Walk the chain: replace in place if present, else remember the first
     page with room. *)
  let rec go page room =
    if page = 0 then `Append room
    else
      let decision =
        Pool.with_page t.pool page (fun f ->
            let d = Pool.data f in
            let entries = bp_entries d in
            if List.mem_assoc key entries then begin
              bp_write_entries d ((key, value) :: List.remove_assoc key entries);
              Pool.mark_dirty t.pool f;
              `Replaced
            end
            else
              `Continue (bp_next d, if room = 0 && bp_room d entry_bytes then page else room))
      in
      match decision with
      | `Replaced -> `Replaced
      | `Continue (next, room) -> go next room
  in
  match go head 0 with
  | `Replaced -> ()
  | `Append room ->
      let target =
        if room <> 0 then room
        else begin
          let page = alloc_bucket_page t in
          (* Link at the head of the chain. *)
          Pool.with_page t.pool page (fun f ->
              bp_set_next (Pool.data f) head;
              Pool.mark_dirty t.pool f);
          bucket_dir_set t b page;
          page
        end
      in
      Pool.with_page t.pool target (fun f ->
          let d = Pool.data f in
          bp_write_entries d (bp_entries d @ [ (key, value) ]);
          Pool.mark_dirty t.pool f);
      t.count <- t.count + 1;
      write_header t;
      maybe_split t

let delete t key =
  Ode_util.Stats.incr_index_probes ();
  let rec go page =
    if page = 0 then false
    else
      let deleted, next =
        Pool.with_page t.pool page (fun f ->
            let d = Pool.data f in
            let entries = bp_entries d in
            if List.mem_assoc key entries then begin
              bp_write_entries d (List.remove_assoc key entries);
              Pool.mark_dirty t.pool f;
              (true, 0)
            end
            else (false, bp_next d))
      in
      deleted || go next
  in
  let ok = go (bucket_dir_get t (bucket_of t key)) in
  if ok then begin
    t.count <- t.count - 1;
    write_header t
  end;
  ok

let iter t f =
  for b = 0 to nbuckets t - 1 do
    let entries, _ = chain_entries t (bucket_dir_get t b) in
    List.iter (fun (k, v) -> f k v) entries
  done

let count t = t.count
let bucket_count t = nbuckets t
let page_count t = Pool.page_count t.pool
let flush t = Pool.flush_all t.pool

let check t =
  let seen = ref 0 in
  let bad = ref None in
  for b = 0 to nbuckets t - 1 do
    let entries, _ = chain_entries t (bucket_dir_get t b) in
    List.iter
      (fun (k, _) ->
        incr seen;
        if bucket_of t k <> b then bad := Some (Printf.sprintf "key in bucket %d hashes elsewhere" b))
      entries
  done;
  match !bad with
  | Some msg -> Error msg
  | None ->
      if !seen <> t.count then
        Error (Printf.sprintf "count mismatch: header %d, found %d" t.count !seen)
      else Ok ()
