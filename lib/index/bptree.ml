module Codec = Ode_util.Codec
module Pool = Ode_storage.Buffer_pool

let magic = "ODEBPT01"
let max_entry = 1024

(* Serialized-node budget. Nodes are (de)serialized whole; a node splits when
   its serialized size would exceed this. *)
let node_capacity = Ode_storage.Page.size - 16

type node =
  | Leaf of { mutable entries : (string * string) array; mutable next : int }
  | Internal of { mutable keys : string array; mutable children : int array }
(* Internal invariant: length children = length keys + 1; subtree children.(i)
   holds keys < keys.(i); children.(i+1) holds keys >= keys.(i). *)

type t = {
  pool : Pool.t;
  mutable root : int;
  mutable count : int;
  (* Decoded-node cache: every mutation goes through [write_node], which
     refreshes the entry, so the cache never goes stale. Bounded by periodic
     reset. [cache_mu] guards the table itself so reader domains can probe
     it concurrently; the nodes inside are only mutated by the (exclusive)
     writer, so a cached node handed out under the lock stays valid for the
     duration of the reader's request. *)
  node_cache : (int, node) Hashtbl.t;
  cache_mu : Mutex.t;
}

let cache_limit = 8192

(* -- node (de)serialization ------------------------------------------------ *)

let node_size = function
  | Leaf l ->
      Array.fold_left (fun acc (k, v) -> acc + 4 + String.length k + String.length v) 7 l.entries
  | Internal n ->
      Array.fold_left (fun acc k -> acc + 2 + String.length k + 4) 7 n.keys

let serialize node =
  let b = Buffer.create 512 in
  (match node with
  | Leaf l ->
      Codec.put_u8 b 0;
      Codec.put_u16 b (Array.length l.entries);
      Codec.put_u32 b l.next;
      Array.iter
        (fun (k, v) ->
          Codec.put_u16 b (String.length k);
          Codec.put_raw b k;
          Codec.put_u16 b (String.length v);
          Codec.put_raw b v)
        l.entries
  | Internal n ->
      Codec.put_u8 b 1;
      Codec.put_u16 b (Array.length n.keys);
      Codec.put_u32 b n.children.(0);
      Array.iteri
        (fun i k ->
          Codec.put_u16 b (String.length k);
          Codec.put_raw b k;
          Codec.put_u32 b n.children.(i + 1))
        n.keys);
  Buffer.contents b

let deserialize s =
  let c = Codec.cursor s in
  match Codec.get_u8 c with
  | 0 ->
      let n = Codec.get_u16 c in
      let next = Codec.get_u32 c in
      let entries =
        Array.init n (fun _ ->
            let klen = Codec.get_u16 c in
            let k = Codec.get_raw c klen in
            let vlen = Codec.get_u16 c in
            let v = Codec.get_raw c vlen in
            (k, v))
      in
      Leaf { entries; next }
  | 1 ->
      let n = Codec.get_u16 c in
      let first = Codec.get_u32 c in
      let keys = Array.make n "" in
      let children = Array.make (n + 1) first in
      for i = 0 to n - 1 do
        let klen = Codec.get_u16 c in
        keys.(i) <- Codec.get_raw c klen;
        children.(i + 1) <- Codec.get_u32 c
      done;
      Internal { keys; children }
  | k -> raise (Codec.Corrupt (Printf.sprintf "bptree: bad node kind %d" k))

let read_node t page =
  match Mutex.protect t.cache_mu (fun () -> Hashtbl.find_opt t.node_cache page) with
  | Some n -> n
  | None ->
      (* A node pointer past the end of the file means the tail was trimmed
         (torn-write repair at open) or the page is rotten: surface it as
         corruption, not as an out-of-range programming error. *)
      if page < 0 || page >= Pool.page_count t.pool then
        raise
          (Codec.Corrupt
             (Printf.sprintf "bptree: node pointer %d beyond end of file (%d pages; truncated?)"
                page (Pool.page_count t.pool)));
      let n =
        Pool.with_page t.pool page (fun f ->
            let data = Pool.data f in
            let c = Codec.cursor (Bytes.to_string data) in
            let len = Codec.get_u16 c in
            deserialize (Codec.get_raw c len))
      in
      Mutex.protect t.cache_mu (fun () ->
          if Hashtbl.length t.node_cache >= cache_limit then Hashtbl.reset t.node_cache;
          Hashtbl.replace t.node_cache page n);
      n

let write_node t page node =
  let s = serialize node in
  assert (String.length s <= node_capacity);
  Pool.with_page t.pool page (fun f ->
      let data = Pool.data f in
      let b = Buffer.create (String.length s + 2) in
      Codec.put_u16 b (String.length s);
      Codec.put_raw b s;
      let out = Buffer.contents b in
      Bytes.blit_string out 0 data 0 (String.length out);
      Pool.mark_dirty t.pool f);
  Mutex.protect t.cache_mu (fun () ->
      if Hashtbl.length t.node_cache >= cache_limit then Hashtbl.reset t.node_cache;
      Hashtbl.replace t.node_cache page node)

let alloc_node t node =
  let f = Pool.allocate t.pool in
  let page = Pool.page_no f in
  Pool.unpin t.pool f;
  write_node t page node;
  page

(* -- header ----------------------------------------------------------------- *)

let write_header t =
  Pool.with_page t.pool 0 (fun f ->
      let data = Pool.data f in
      Bytes.fill data 0 Ode_storage.Page.size '\000';
      Bytes.blit_string magic 0 data 0 8;
      let b = Buffer.create 16 in
      Codec.put_u32 b t.root;
      Codec.put_i64 b (Int64.of_int t.count);
      Bytes.blit_string (Buffer.contents b) 0 data 8 12;
      Pool.mark_dirty t.pool f)

let attach pool =
  if Pool.page_count pool = 0 then begin
    let f = Pool.allocate pool in
    assert (Pool.page_no f = 0);
    Pool.unpin pool f;
    let t = { pool; root = 0; count = 0; node_cache = Hashtbl.create 256; cache_mu = Mutex.create () } in
    let root = alloc_node t (Leaf { entries = [||]; next = 0 }) in
    t.root <- root;
    write_header t;
    t
  end
  else
    let header =
      Pool.with_page pool 0 (fun f ->
          let data = Pool.data f in
          let got = Bytes.sub_string data 0 8 in
          if got = magic then begin
            let c = Codec.cursor ~pos:8 (Bytes.to_string data) in
            let root = Codec.get_u32 c in
            let count = Int64.to_int (Codec.get_i64 c) in
            `Ok (root, count)
          end
          else if String.for_all (fun ch -> ch = '\000') got then `Never_flushed
          else invalid_arg "bptree: bad magic")
    in
    match header with
    | `Ok (root, count) -> { pool; root; count; node_cache = Hashtbl.create 256; cache_mu = Mutex.create () }
    | `Never_flushed ->
        (* A crash before the first flush left a stamped all-zero header:
           the tree was never durably initialised. Rebuild it empty; any
           other leftover pages are unreachable from the new root. *)
        Ode_util.Stats.incr_pages_reformatted ();
        let t = { pool; root = 0; count = 0; node_cache = Hashtbl.create 256; cache_mu = Mutex.create () } in
        let root = alloc_node t (Leaf { entries = [||]; next = 0 }) in
        t.root <- root;
        write_header t;
        t

(* -- search helpers ---------------------------------------------------------- *)

(* Index of the child to descend into for [key]. *)
let child_index keys key =
  let n = Array.length keys in
  let rec bs lo hi =
    (* smallest i with key < keys.(i); descend child i *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if String.compare key keys.(mid) < 0 then bs lo mid else bs (mid + 1) hi
  in
  bs 0 n

(* Position of [key] in a sorted entry array: Ok i if present, Error i for
   the insertion point. *)
let entry_index entries key =
  let n = Array.length entries in
  let rec bs lo hi =
    if lo >= hi then Error lo
    else
      let mid = (lo + hi) / 2 in
      let c = String.compare key (fst entries.(mid)) in
      if c = 0 then Ok mid else if c < 0 then bs lo mid else bs (mid + 1) hi
  in
  bs 0 n

let rec find_leaf t page key =
  match read_node t page with
  | Leaf _ as l -> (page, l)
  | Internal n -> find_leaf t n.children.(child_index n.keys key) key

(* -- public: lookup ----------------------------------------------------------- *)

let find t key =
  Ode_util.Stats.incr_index_probes ();
  Ode_util.Trace.instant ~cat:"index" "bptree.find";
  match find_leaf t t.root key with
  | _, Leaf l -> (
      match entry_index l.entries key with
      | Ok i -> Some (snd l.entries.(i))
      | Error _ -> None)
  | _ -> assert false

let mem t key = find t key <> None

(* -- public: insert ----------------------------------------------------------- *)

let array_insert arr i x =
  let n = Array.length arr in
  Array.init (n + 1) (fun j -> if j < i then arr.(j) else if j = i then x else arr.(j - 1))

let array_remove arr i =
  let n = Array.length arr in
  Array.init (n - 1) (fun j -> if j < i then arr.(j) else arr.(j + 1))

(* Insert below [page]; if the node split, return (separator, right page). *)
let rec insert_at t page key value =
  match read_node t page with
  | Leaf l ->
      let entries =
        match entry_index l.entries key with
        | Ok i ->
            let e = Array.copy l.entries in
            e.(i) <- (key, value);
            e
        | Error i ->
            t.count <- t.count + 1;
            array_insert l.entries i (key, value)
      in
      let node = Leaf { entries; next = l.next } in
      if node_size node <= node_capacity then begin
        write_node t page node;
        None
      end
      else begin
        let n = Array.length entries in
        let mid = n / 2 in
        let left = Array.sub entries 0 mid in
        let right = Array.sub entries mid (n - mid) in
        let right_page = alloc_node t (Leaf { entries = right; next = l.next }) in
        write_node t page (Leaf { entries = left; next = right_page });
        Some (fst right.(0), right_page)
      end
  | Internal n -> (
      let ci = child_index n.keys key in
      match insert_at t n.children.(ci) key value with
      | None -> None
      | Some (sep, right_page) ->
          let keys = array_insert n.keys ci sep in
          let children = array_insert n.children (ci + 1) right_page in
          let node = Internal { keys; children } in
          if node_size node <= node_capacity then begin
            write_node t page node;
            None
          end
          else begin
            (* Split internal: middle key moves up. *)
            let k = Array.length keys in
            let mid = k / 2 in
            let up = keys.(mid) in
            let lkeys = Array.sub keys 0 mid in
            let rkeys = Array.sub keys (mid + 1) (k - mid - 1) in
            let lchildren = Array.sub children 0 (mid + 1) in
            let rchildren = Array.sub children (mid + 1) (k - mid) in
            let right_page = alloc_node t (Internal { keys = rkeys; children = rchildren }) in
            write_node t page (Internal { keys = lkeys; children = lchildren });
            Some (up, right_page)
          end)

let insert t key value =
  if key = "" then invalid_arg "bptree: empty key";
  if String.length key + String.length value > max_entry then
    invalid_arg "bptree: entry too large";
  Ode_util.Stats.incr_index_probes ();
  Ode_util.Trace.instant ~cat:"index" "bptree.insert";
  (match insert_at t t.root key value with
  | None -> ()
  | Some (sep, right) ->
      let root = alloc_node t (Internal { keys = [| sep |]; children = [| t.root; right |] }) in
      t.root <- root);
  write_header t

(* -- public: delete ------------------------------------------------------------ *)

let delete t key =
  Ode_util.Stats.incr_index_probes ();
  Ode_util.Trace.instant ~cat:"index" "bptree.delete";
  let page, node = find_leaf t t.root key in
  match node with
  | Leaf l -> (
      match entry_index l.entries key with
      | Error _ -> false
      | Ok i ->
          write_node t page (Leaf { entries = array_remove l.entries i; next = l.next });
          t.count <- t.count - 1;
          write_header t;
          true)
  | Internal _ -> assert false

(* -- public: streaming cursor ----------------------------------------------------- *)

(* A cursor holds one leaf's entry array plus the forward link to the next
   leaf. Entry arrays are never mutated in place (inserts and deletes build
   fresh arrays), so the snapshot stays valid even if the tree is written
   between [next] calls — the cursor simply keeps walking the leaf chain it
   seeked into. Page 0 is the tree header, so [cnext = 0] means "no further
   leaf". *)
type cursor = {
  ct : t;
  mutable centries : (string * string) array;
  mutable cidx : int;
  mutable cnext : int;
  chi : string option;
  cinclusive_hi : bool;
}

let cursor t ?lo ?hi ?(inclusive_hi = false) () =
  Ode_util.Stats.incr_index_probes ();
  Ode_util.Trace.instant ~cat:"index" "bptree.cursor";
  let start_key = Option.value lo ~default:"" in
  match find_leaf t t.root start_key with
  | _, Internal _ -> assert false
  | _, Leaf l ->
      Ode_util.Stats.incr_cursor_pages_read ();
      (* Both [Ok i] and [Error i] index the first entry >= start_key. *)
      let idx = match entry_index l.entries start_key with Ok i -> i | Error i -> i in
      { ct = t; centries = l.entries; cidx = idx; cnext = l.next; chi = hi; cinclusive_hi = inclusive_hi }

let rec cursor_next cur =
  if cur.cidx < Array.length cur.centries then begin
    let (k, _) as entry = cur.centries.(cur.cidx) in
    cur.cidx <- cur.cidx + 1;
    let below_hi =
      match cur.chi with
      | None -> true
      | Some h ->
          let c = String.compare k h in
          if cur.cinclusive_hi then c <= 0 else c < 0
    in
    if below_hi then Some entry
    else begin
      cur.centries <- [||];
      cur.cnext <- 0;
      None
    end
  end
  else if cur.cnext = 0 then None
  else
    match read_node cur.ct cur.cnext with
    | Internal _ -> assert false
    | Leaf l ->
        Ode_util.Stats.incr_cursor_pages_read ();
        cur.centries <- l.entries;
        cur.cidx <- 0;
        cur.cnext <- l.next;
        cursor_next cur

let cursor_prefix t prefix =
  match Ode_util.Key.succ_prefix prefix with
  | Some hi -> cursor t ~lo:prefix ~hi ()
  | None -> cursor t ~lo:prefix ()

(* -- public: range scans --------------------------------------------------------- *)

let iter_range t ?lo ?hi ?inclusive_hi f =
  let cur = cursor t ?lo ?hi ?inclusive_hi () in
  let rec go () =
    match cursor_next cur with
    | None -> ()
    | Some (k, v) -> if f k v then go ()
  in
  go ()

(* Reverse-order scan. Leaves are only forward-linked, so this walks the
   tree top-down visiting children right-to-left; bounds prune subtrees. *)
let iter_range_rev t ?lo ?hi ?(inclusive_hi = false) f =
  Ode_util.Stats.incr_index_probes ();
  let below_hi k =
    match hi with
    | None -> true
    | Some h ->
        let c = String.compare k h in
        if inclusive_hi then c <= 0 else c < 0
  in
  let above_lo k = match lo with None -> true | Some l -> String.compare k l >= 0 in
  let exception Stop in
  let rec walk page =
    match read_node t page with
    | Leaf l ->
        for i = Array.length l.entries - 1 downto 0 do
          let k, v = l.entries.(i) in
          if below_hi k && above_lo k then if not (f k v) then raise Stop
        done
    | Internal n ->
        for i = Array.length n.children - 1 downto 0 do
          (* child i spans [keys.(i-1), keys.(i)); prune with the bounds *)
          let child_min = if i = 0 then None else Some n.keys.(i - 1) in
          let child_max = if i = Array.length n.keys then None else Some n.keys.(i) in
          let overlaps_lo =
            match (lo, child_max) with
            | Some l, Some cmax -> String.compare cmax l > 0
            | _ -> true
          in
          let overlaps_hi =
            match (hi, child_min) with
            | Some h, Some cmin ->
                if inclusive_hi then String.compare cmin h <= 0 else String.compare cmin h < 0
            | _ -> true
          in
          if overlaps_lo && overlaps_hi then walk n.children.(i)
        done
  in
  try walk t.root with Stop -> ()

let iter_prefix_rev t prefix f =
  match Ode_util.Key.succ_prefix prefix with
  | Some hi -> iter_range_rev t ~lo:prefix ~hi f
  | None -> iter_range_rev t ~lo:prefix f

let iter_prefix t prefix f =
  match Ode_util.Key.succ_prefix prefix with
  | Some hi -> iter_range t ~lo:prefix ~hi f
  | None -> iter_range t ~lo:prefix f

let count t = t.count
let page_count t = Pool.page_count t.pool
let pool t = t.pool
let flush t = Pool.flush_all t.pool

let rec node_height t page =
  match read_node t page with
  | Leaf _ -> 1
  | Internal n -> 1 + node_height t n.children.(0)

let height t = node_height t t.root

(* -- structural check -------------------------------------------------------------- *)

let check t =
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  let exception Bad of string in
  (* Verify key order inside every node, separator bounds, and count. *)
  let seen = ref 0 in
  let rec go page ~lo ~hi =
    match read_node t page with
    | Leaf l ->
        Array.iter
          (fun (k, _) ->
            incr seen;
            (match lo with
            | Some l0 when String.compare k l0 < 0 -> raise (Bad "leaf key below bound")
            | _ -> ());
            match hi with
            | Some h0 when String.compare k h0 >= 0 -> raise (Bad "leaf key above bound")
            | _ -> ())
          l.entries;
        let rec sorted i =
          i >= Array.length l.entries - 1
          || String.compare (fst l.entries.(i)) (fst l.entries.(i + 1)) < 0 && sorted (i + 1)
        in
        if not (sorted 0) then raise (Bad "leaf unsorted")
    | Internal n ->
        let rec sorted i =
          i >= Array.length n.keys - 1
          || String.compare n.keys.(i) n.keys.(i + 1) < 0 && sorted (i + 1)
        in
        if not (sorted 0) then raise (Bad "internal unsorted");
        Array.iteri
          (fun i child ->
            let lo' = if i = 0 then lo else Some n.keys.(i - 1) in
            let hi' = if i = Array.length n.keys then hi else Some n.keys.(i) in
            go child ~lo:lo' ~hi:hi')
          n.children
  in
  match go t.root ~lo:None ~hi:None with
  | () -> if !seen <> t.count then fail "count mismatch: header %d, found %d" t.count !seen else Ok ()
  | exception Bad msg -> Error msg
