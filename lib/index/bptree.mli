(** Disk-backed B+tree mapping byte-string keys to byte-string values.

    Keys are unique (inserting an existing key replaces its value); callers
    needing duplicates append a discriminator to the key (see {!Key}).
    Deletion is lazy: entries are removed but nodes are not rebalanced,
    which is fine for the workloads this engine targets and keeps rids of
    sibling entries stable during scans.

    The tree owns its pager: page 0 is a header holding the root page number
    and the entry count. *)

type t

val attach : Ode_storage.Buffer_pool.t -> t
(** Open the tree stored in the pool's disk, formatting an empty tree on an
    empty disk. *)

val insert : t -> string -> string -> unit
(** [insert t key value]. Raises [Invalid_argument] if [key]+[value] exceed
    {!max_entry} bytes or the key is empty. *)

val find : t -> string -> string option
val mem : t -> string -> bool

val delete : t -> string -> bool
(** Remove a key; false if absent. *)

type cursor
(** A streaming scan position: one seek, then leaf-chain walks on demand.
    O(1) memory — the cursor holds a single leaf's entries at a time — and
    abandoning it early reads no further pages. The cursor snapshots each
    leaf's entry array (arrays are copied on mutation, never updated in
    place), so interleaved writes cannot corrupt an in-flight scan; entries
    committed behind the cursor's position may or may not be observed. *)

val cursor : t -> ?lo:string -> ?hi:string -> ?inclusive_hi:bool -> unit -> cursor
(** Seek to the first entry [>= lo] (tree start when omitted). The scan
    yields entries while [key < hi] ([<= hi] when [inclusive_hi]). *)

val cursor_prefix : t -> string -> cursor
(** Cursor over all keys starting with the given prefix. *)

val cursor_next : cursor -> (string * string) option
(** Next entry in key order, or [None] when the range is exhausted. *)

val iter_range :
  t -> ?lo:string -> ?hi:string -> ?inclusive_hi:bool -> (string -> string -> bool) -> unit
(** [iter_range t ~lo ~hi f] visits entries with [lo <= key < hi] (or
    [<= hi] when [inclusive_hi] is true) in key order; [f] returns [false]
    to stop early. Omitted bounds are open. *)

val iter_prefix : t -> string -> (string -> string -> bool) -> unit
(** Visit all entries whose key starts with the given prefix. *)

val iter_range_rev :
  t -> ?lo:string -> ?hi:string -> ?inclusive_hi:bool -> (string -> string -> bool) -> unit
(** Like {!iter_range} but in descending key order (top-down right-to-left
    walk; leaves carry no back pointers). *)

val iter_prefix_rev : t -> string -> (string -> string -> bool) -> unit

val count : t -> int
val height : t -> int
val page_count : t -> int

val pool : t -> Ode_storage.Buffer_pool.t
(** The buffer pool the tree lives in (tests and recovery tooling). *)

val flush : t -> unit
val max_entry : int

val check : t -> (unit, string) result
(** Structural check: key order within and across nodes, separator
    consistency, leaf chain completeness. For tests. *)
