(** Disk-backed linear-hashing index: byte-string keys to byte-string
    values, point lookups only.

    This is the classic Litwin linear-hashing scheme: the bucket array grows
    one bucket at a time (split pointer + level), so there is no global
    rehash; each bucket is a chain of slotted pages. The engine's planner
    uses the {!Bptree} for secondary indexes because it also serves range
    scans and ordered iteration; this structure exists as the substrate
    alternative (benchmark E14 measures the trade-off: cheaper point probes,
    no ranges).

    Keys are unique; inserting an existing key replaces its value. *)

type t

val attach : Ode_storage.Buffer_pool.t -> t
(** Open (or format) the index stored in the pool's disk. *)

val insert : t -> string -> string -> unit
(** Raises [Invalid_argument] for an empty key or an entry over
    {!max_entry} bytes. *)

val find : t -> string -> string option
val mem : t -> string -> bool
val delete : t -> string -> bool
val count : t -> int
val bucket_count : t -> int
val page_count : t -> int
val flush : t -> unit
val max_entry : int

val iter : t -> (string -> string -> unit) -> unit
(** Visit every entry (no meaningful order). *)

val check : t -> (unit, string) result
(** Structural check: every key hashes to the bucket that stores it and the
    header count matches; for tests. *)
