module Codec = Ode_util.Codec
module Oid = Ode_model.Oid
module Value = Ode_model.Value
module Otype = Ode_model.Otype
module Schema = Ode_model.Schema
module Catalog = Ode_model.Catalog
module Bptree = Ode_index.Bptree
open Types

exception Type_error of string
exception No_cluster of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

type header = Types.header = { hcls : int; hcurrent : int; hversions : int list }

let encode_header h =
  let b = Buffer.create 24 in
  Codec.put_u32 b h.hcls;
  Codec.put_u32 b h.hcurrent;
  Codec.put_u16 b (List.length h.hversions);
  List.iter (Codec.put_u32 b) h.hversions;
  Buffer.contents b

let decode_header s =
  let c = Codec.cursor s in
  let hcls = Codec.get_u32 c in
  let hcurrent = Codec.get_u32 c in
  let n = Codec.get_u16 c in
  { hcls; hcurrent; hversions = List.init n (fun _ -> Codec.get_u32 c) }

(* -- overlay ---------------------------------------------------------------- *)

(* The snapshot a read resolves against: the transaction's read timestamp,
   or "latest" for embedded callers that pass no transaction (max_int makes
   every chain head visible, i.e. the plain committed state). *)
let read_ts_of = function Some t -> t.read_ts | None -> max_int

let read db txn key =
  let from_writes =
    match txn with
    | Some t -> Hashtbl.find_opt t.writes key
    | None -> None
  in
  match from_writes with
  | Some (Put s) -> Some s
  | Some Del -> None
  | None -> (
      match Mvcc.read db.mvcc ~read_ts:(read_ts_of txn) key with
      | Mvcc.Older v -> v
      | Mvcc.Latest -> Kv.get db key)

(* The two overlay choke points: every mutation in this module funnels
   through them. A detached read txn (reader domain) is rejected before the
   overlay — or any shared structure — is touched, so the server can replay
   the request on the writer domain. *)
let write txn key payload =
  if txn.tro then raise Read_only_txn;
  Hashtbl.replace txn.writes key (Put payload)

let remove txn key =
  if txn.tro then raise Read_only_txn;
  Hashtbl.replace txn.writes key Del

(* -- object reads -------------------------------------------------------------- *)

(* Reads go overlay -> decoded-object cache -> committed KV. The cache is
   only consulted and only populated when the transaction has no pending
   write for the key, so it never absorbs or serves uncommitted state. *)

let pending txn key =
  match txn with Some t -> Hashtbl.find_opt t.writes key | None -> None

let get_header db txn oid =
  let key = Keys.header oid in
  match pending txn key with
  | Some (Put s) -> Some (decode_header s)
  | Some Del -> None
  | None -> (
      (* Snapshot resolution before the cache: the decoded-object cache
         holds only the *latest* committed state, so a read that an MVCC
         chain answers (the key changed past this snapshot) bypasses it
         entirely — in both directions: never served from it, never
         populated into it. *)
      match Mvcc.read db.mvcc ~read_ts:(read_ts_of txn) key with
      | Mvcc.Older None -> None
      | Mvcc.Older (Some s) -> Some (decode_header s)
      | Mvcc.Latest -> (
          match Ocache.find db key with
          | Some (Cheader h) -> Some h
          | Some (Cfields _) | None -> (
              match Kv.get db key with
              | None -> None
              | Some s ->
                  let h = decode_header s in
                  Ocache.add db key (Cheader h);
                  Some h)))

let exists db txn oid = get_header db txn oid <> None
let class_of db (oid : Oid.t) = Catalog.find_by_id db.catalog oid.cls

let get_fields_v db txn (vr : Oid.vref) =
  let key = Keys.version vr.oid vr.ver in
  match pending txn key with
  | Some (Put s) ->
      Ode_util.Stats.incr_objects_fetched ();
      Some (Value.fields_decode s)
  | Some Del -> None
  | None -> (
      match Mvcc.read db.mvcc ~read_ts:(read_ts_of txn) key with
      | Mvcc.Older None -> None
      | Mvcc.Older (Some s) ->
          Ode_util.Stats.incr_objects_fetched ();
          Some (Value.fields_decode s)
      | Mvcc.Latest -> (
          match Ocache.find db key with
          | Some (Cfields fs) -> Some fs
          | Some (Cheader _) | None -> (
              match Kv.get db key with
              | None -> None
              | Some s ->
                  Ode_util.Stats.incr_objects_fetched ();
                  let fs = Value.fields_decode s in
                  Ocache.add db key (Cfields fs);
                  Some fs)))

let get_fields db txn oid =
  match get_header db txn oid with
  | None -> None
  | Some h -> get_fields_v db txn { oid; ver = h.hcurrent }

let get_field db txn oid fname =
  match get_fields db txn oid with None -> None | Some fs -> List.assoc_opt fname fs

let get_field_v db txn vr fname =
  match get_fields_v db txn vr with None -> None | Some fs -> List.assoc_opt fname fs

(* -- index plumbing --------------------------------------------------------------- *)

let applicable_indexes db (cls : Schema.cls) =
  let ancestors = List.map (fun (a : Schema.cls) -> a.Schema.name) (Catalog.lineage db.catalog cls) in
  let rec go i = function
    | [] -> []
    | (icls, field) :: rest ->
        if List.mem icls ancestors then (i, field) :: go (i + 1) rest else go (i + 1) rest
  in
  go 0 (Catalog.indexes db.catalog)

let index_ids db ~cls ~field =
  let rec go i = function
    | [] -> None
    | (c, f) :: rest -> if c = cls && f = field then Some i else go (i + 1) rest
  in
  go 0 (Catalog.indexes db.catalog)

let index_put txn ~idx_id ~value ~oid =
  write txn (Keys.index_entry ~idx_id ~valkey:(Value.index_key value) ~oid) ""

let index_del txn ~idx_id ~value ~oid =
  remove txn (Keys.index_entry ~idx_id ~valkey:(Value.index_key value) ~oid)

let field_value fields fname =
  match List.assoc_opt fname fields with Some v -> v | None -> Value.Null

(* -- conformance -------------------------------------------------------------------- *)

let check_conform db cls_name (field : Schema.field) v =
  let class_of oid = Option.map (fun (c : Schema.cls) -> c.Schema.name) (class_of db oid) in
  let subclass ~sub ~super = Catalog.is_subclass db.catalog ~sub ~super in
  if not (Otype.conforms ~subclass field.ftype v ~class_of) then
    type_error "class %s: field %s expects %s, got %a" cls_name field.fname
      (Otype.to_string field.ftype) Value.pp v

(* -- mutations ------------------------------------------------------------------------ *)

let touch txn oid = Hashtbl.replace txn.touched oid ()

let create txn (cls : Schema.cls) inits =
  let db = txn.tdb in
  (* Guard before the next_num bump and catalog_dirty flag: [create] mutates
     shared schema state ahead of its overlay writes. *)
  if txn.tro then raise Read_only_txn;
  if not (Catalog.has_cluster db.catalog cls) then raise (No_cluster cls.Schema.name);
  let fields = Catalog.all_fields db.catalog cls in
  let names = Schema.field_names fields in
  List.iter
    (fun (n, _) -> if not (List.mem n names) then type_error "class %s has no field %s" cls.Schema.name n)
    inits;
  let values =
    List.map
      (fun (f : Schema.field) ->
        let v =
          match List.assoc_opt f.fname inits with
          | Some v -> v
          | None -> (
              (* Member initializer if declared, else the type's zero.
                 Initializers are closed expressions (enforced at class
                 definition time), so the detached evaluator suffices. *)
              match f.fdefault with
              | Some e -> (
                  match
                    Ode_model.Eval.eval Ode_model.Eval.null_hooks ~vars:[] ~this:None e
                  with
                  | v -> v
                  | exception Ode_model.Eval.Error msg ->
                      type_error "class %s: default for %s failed: %s" cls.Schema.name f.fname msg)
              | None -> Otype.default_value f.ftype)
        in
        check_conform db cls.Schema.name f v;
        (f.fname, v))
      fields
  in
  let num = cls.Schema.next_num in
  cls.Schema.next_num <- num + 1;
  txn.catalog_dirty <- true;
  let oid : Oid.t = { cls = cls.Schema.id; num } in
  write txn (Keys.header oid) (encode_header { hcls = cls.Schema.id; hcurrent = 0; hversions = [ 0 ] });
  write txn (Keys.version oid 0) (Value.fields_encode values);
  List.iter
    (fun (idx_id, fname) -> index_put txn ~idx_id ~value:(field_value values fname) ~oid)
    (applicable_indexes db cls);
  txn.created <- oid :: txn.created;
  touch txn oid;
  oid

let require_header db txn oid =
  match get_header db txn oid with
  | Some h -> h
  | None -> type_error "no such object %a" Oid.pp oid

let cls_of_header db (h : header) =
  match Catalog.find_by_id db.catalog h.hcls with
  | Some c -> c
  | None -> type_error "object of unknown class id %d" h.hcls

let update_fields txn oid updates =
  let db = txn.tdb in
  let h = require_header db (Some txn) oid in
  let cls = cls_of_header db h in
  let schema_fields = Catalog.all_fields db.catalog cls in
  let old_fields =
    match get_fields_v db (Some txn) { oid; ver = h.hcurrent } with
    | Some fs -> fs
    | None -> type_error "object %a: missing current version" Oid.pp oid
  in
  List.iter
    (fun (n, v) ->
      match Schema.find_field schema_fields n with
      | None -> type_error "class %s has no field %s" cls.Schema.name n
      | Some f -> check_conform db cls.Schema.name f v)
    updates;
  let new_fields =
    List.map
      (fun (n, old) ->
        match List.assoc_opt n updates with Some v -> (n, v) | None -> (n, old))
      old_fields
  in
  write txn (Keys.version oid h.hcurrent) (Value.fields_encode new_fields);
  (* Refresh index entries whose field changed. *)
  List.iter
    (fun (idx_id, fname) ->
      let old_v = field_value old_fields fname in
      let new_v = field_value new_fields fname in
      if not (Value.equal old_v new_v) then begin
        index_del txn ~idx_id ~value:old_v ~oid;
        index_put txn ~idx_id ~value:new_v ~oid
      end)
    (applicable_indexes db cls);
  touch txn oid

let delete_object txn oid =
  let db = txn.tdb in
  let h = require_header db (Some txn) oid in
  let cls = cls_of_header db h in
  let cur_fields =
    match get_fields_v db (Some txn) { oid; ver = h.hcurrent } with Some fs -> fs | None -> []
  in
  List.iter (fun ver -> remove txn (Keys.version oid ver)) h.hversions;
  remove txn (Keys.header oid);
  List.iter
    (fun (idx_id, fname) -> index_del txn ~idx_id ~value:(field_value cur_fields fname) ~oid)
    (applicable_indexes db cls);
  touch txn oid

let new_version txn oid =
  let db = txn.tdb in
  let h = require_header db (Some txn) oid in
  let cur =
    match get_fields_v db (Some txn) { oid; ver = h.hcurrent } with
    | Some fs -> fs
    | None -> type_error "object %a: missing current version" Oid.pp oid
  in
  (* [hversions] is newest-first, so the next version number is one past the
     head — no list traversal or append. *)
  let next = match h.hversions with [] -> 0 | newest :: _ -> newest + 1 in
  write txn (Keys.version oid next) (Value.fields_encode cur);
  write txn (Keys.header oid)
    (encode_header { h with hcurrent = next; hversions = next :: h.hversions });
  (* The new version is current and has the same field values, so index
     entries are already correct. *)
  touch txn oid;
  next

let delete_version txn (vr : Oid.vref) =
  let db = txn.tdb in
  let h = require_header db (Some txn) vr.oid in
  if not (List.mem vr.ver h.hversions) then
    type_error "object %a has no version %d" Oid.pp vr.oid vr.ver;
  let remaining = List.filter (fun v -> v <> vr.ver) h.hversions in
  match remaining with
  | [] -> delete_object txn vr.oid
  | _ ->
      let cls = cls_of_header db h in
      if vr.ver = h.hcurrent then begin
        (* Promote the newest remaining version (the list is newest-first);
           the index must now reflect its field values instead of the
           deleted current's. *)
        let new_current = List.hd remaining in
        let old_fields =
          match get_fields_v db (Some txn) { oid = vr.oid; ver = h.hcurrent } with
          | Some fs -> fs
          | None -> []
        in
        let new_fields =
          match get_fields_v db (Some txn) { oid = vr.oid; ver = new_current } with
          | Some fs -> fs
          | None -> []
        in
        List.iter
          (fun (idx_id, fname) ->
            let old_v = field_value old_fields fname in
            let new_v = field_value new_fields fname in
            if not (Value.equal old_v new_v) then begin
              index_del txn ~idx_id ~value:old_v ~oid:vr.oid;
              index_put txn ~idx_id ~value:new_v ~oid:vr.oid
            end)
          (applicable_indexes db cls);
        write txn (Keys.header vr.oid)
          (encode_header { h with hcurrent = new_current; hversions = remaining })
      end
      else write txn (Keys.header vr.oid) (encode_header { h with hversions = remaining });
      remove txn (Keys.version vr.oid vr.ver);
      touch txn vr.oid

(* -- apply (commit & recovery) ----------------------------------------------------------- *)

let apply_op db key op =
  if Keys.is_index_key key then begin
    let tkey = Keys.index_tree_key key in
    match op with
    | Put _ -> Bptree.insert db.idx tkey ""
    | Del -> ignore (Bptree.delete db.idx tkey)
  end
  else
    match op with
    | Put payload ->
        (* The stats hook rides the single apply choke point, so commit
           apply, recovery replay and standby apply all maintain the same
           cardinality counters; a replayed/replicated analyze snapshot
           installs itself the same way. *)
        if key = Keys.stats then Ostats.install db payload
        else if Ostats.is_header_key key && not (Kv.mem db key) then
          Ostats.note_create db key;
        Kv.put db key payload
    | Del ->
        if Ostats.is_header_key key && Kv.mem db key then Ostats.note_delete db key;
        Kv.delete db key

(* The current committed value of a logical key — the pre-image the MVCC
   layer records as a new chain's base entry just before a commit applies
   over it. Index entries live in the index tree (present = [Some ""]),
   everything else in the KV. Called under the exclusive latch. *)
let committed_image db key =
  if Keys.is_index_key key then
    if Bptree.find db.idx (Keys.index_tree_key key) <> None then Some "" else None
  else Kv.get db key
