(** Top-level driver for the surface language: the O++ "program".

    Executes parsed top-level forms against a database: class definitions,
    cluster/index creation, transaction control ([begin;] / [commit;] /
    [abort;]), [explain], logical-clock advancement, and plain statements.
    Statements outside an explicit transaction are autocommitted (each
    statement is its own transaction, as the paper's programs-as-transactions
    model degenerates to for single statements). *)

type t

val create : ?print:(string -> unit) -> Database.t -> t
(** [print] receives all shell output (default stdout). *)

val database : t -> Database.t

val exec_top : t -> Ode_lang.Ast.top -> unit

val exec : t -> string -> unit
(** Parse and execute a whole program. Exceptions propagate after aborting
    any open transaction on parse errors only; runtime errors leave an
    explicit transaction open for the user to [abort;]. *)

val exec_catching : t -> string -> (unit, string) result
(** Like {!exec} but rendering any error as a message (for the REPL). A
    {!Types.Txn_conflict} renders with the load-bearing ["conflict: "]
    prefix and clears the (already server-side-aborted) open transaction;
    a later bare [commit;] re-reports the conflict until [begin] or
    [abort] acknowledges it, so retried commit requests keep seeing the
    retryable error. *)

val vars : t -> (string * Ode_model.Value.t) list
(** Current shell variable bindings. *)

val in_transaction : t -> bool
(** Is an explicit [begin;] transaction open? *)

val rollback : t -> unit
(** Abort the open explicit transaction, if any. Used by the server when a
    session disconnects or the server shuts down mid-transaction. *)

val query_rows : ?detached:bool -> t -> string -> (string list, string) result
(** Run a bodiless [forall] query and render each qualifying object as one
    row (oid plus fields) — the wire protocol's [Query] opcode. Runs inside
    the open explicit transaction if any; otherwise in a detached read-only
    transaction ([detached], the default — safe on a reader domain) or an
    ordinary write transaction ([~detached:false] — the writer-domain
    fallback). Errors are rendered, not raised, except
    {!Types.Read_only_txn}, which escapes so the server can re-route the
    request to the writer domain. *)

val dot_command : t -> string -> string option
(** Handle a sqlite3-style dot command line ([.stats [reset]], [.recovery],
    [.metrics [reset]], [.hist NAME], [.txns], [.trace on|off|dump FILE],
    [.explain QUERY], [.profile QUERY], [.durability [full|group|async]],
    [.sync], [.read FILE], [.quit], [.help]). [.txns] reports the open
    write transactions (xid, read timestamp), live snapshot count, the
    MVCC GC horizon and the dead-version backlog. [.durability] reports (and
    with an argument, switches) the database's commit durability level —
    switching to [full] first syncs any pending group commits; [.sync]
    force-acknowledges pending commits with one shared WAL fsync.
    Returns [None] when the line is not a dot command, [Some output]
    otherwise (errors are rendered into the output, never raised; an empty
    output means "nothing to print"). [.read] executes a script file through
    {!exec_catching}; [.quit] sets {!wants_quit} for the driving REPL. *)

val wants_quit : t -> bool
(** Set once [.quit] has been executed; the REPL checks it after each dot
    command. *)
