(* MVCC version chains + snapshot registry. See mvcc.mli for the model.

   Everything lives behind one mutex; the only lock-free path is the
   [nonempty] atomic consulted by every committed read, so a store with no
   concurrent snapshots (the common case: autocommitted statements, a lone
   embedded program) pays a single atomic load per read and nothing else.

   Invariant relied on for conflict detection and visibility: a commit is
   recorded into chains whenever any other snapshot is live at commit time.
   A snapshot's read timestamp is captured at begin and commit timestamps
   only grow, so every commit a snapshot cannot see was recorded while that
   snapshot was registered — a missing chain therefore always means "the
   snapshot sees the current committed value". *)

type version = { v_ts : int; v_data : string option }

type t = {
  mu : Mutex.t;
  chains : (string, version list) Hashtbl.t; (* newest-first, never [] *)
  snaps : (int, int) Hashtbl.t; (* token -> read_ts *)
  mutable next_token : int;
  mutable floor : int; (* highest commit ts seen *)
  mutable entries : int; (* total chain entries *)
  mutable commits_since_gc : int;
  mutable reclaimed : int;
  nonempty : int Atomic.t; (* 1 iff [chains] is non-empty *)
}

type visibility = Latest | Older of string option

let create () =
  {
    mu = Mutex.create ();
    chains = Hashtbl.create 64;
    snaps = Hashtbl.create 8;
    next_token = 1;
    floor = 0;
    entries = 0;
    commits_since_gc = 0;
    reclaimed = 0;
    nonempty = Atomic.make 0;
  }

let with_mu t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* -- GC (call with [mu] held) -------------------------------------------- *)

let oldest_locked t = Hashtbl.fold (fun _ ts acc ->
    match acc with None -> Some ts | Some m -> Some (min m ts)) t.snaps None

(* Trim one chain against horizon [h]: keep every entry a snapshot at or
   after [h] could still need — all entries newer than [h] plus the first
   (newest) one at or below it. A chain whose head is at or below [h] is
   invisible to every live snapshot ([Latest] everywhere) and goes away. *)
let gc_locked t =
  let removed = ref 0 in
  (match oldest_locked t with
  | None ->
      removed := t.entries;
      Hashtbl.reset t.chains
  | Some h ->
      Hashtbl.filter_map_inplace
        (fun _ chain ->
          match chain with
          | { v_ts; _ } :: _ when v_ts <= h ->
              removed := !removed + List.length chain;
              None
          | chain ->
              let rec keep = function
                | [] -> []
                | ({ v_ts; _ } as v) :: rest ->
                    if v_ts > h then v :: keep rest
                    else begin
                      removed := !removed + List.length rest;
                      [ v ]
                    end
              in
              Some (keep chain))
        t.chains);
  t.entries <- t.entries - !removed;
  t.reclaimed <- t.reclaimed + !removed;
  t.commits_since_gc <- 0;
  if Hashtbl.length t.chains = 0 then Atomic.set t.nonempty 0

let maybe_gc_locked t =
  if t.entries > 0 && (t.commits_since_gc >= 64 || t.entries - Hashtbl.length t.chains >= 4096)
  then gc_locked t

let gc t = with_mu t (fun () -> if Atomic.get t.nonempty = 1 then gc_locked t)

(* -- snapshots ------------------------------------------------------------ *)

let snapshot t ~read_ts =
  with_mu t (fun () ->
      let tok = t.next_token in
      t.next_token <- tok + 1;
      Hashtbl.replace t.snaps tok read_ts;
      tok)

let release t tok =
  with_mu t (fun () ->
      Hashtbl.remove t.snaps tok;
      if Hashtbl.length t.snaps = 0 && t.entries > 0 then gc_locked t)

let oldest_snapshot t = with_mu t (fun () -> oldest_locked t)
let live_snapshots t = Hashtbl.length t.snaps

(* -- reads ---------------------------------------------------------------- *)

let read t ~read_ts key =
  if Atomic.get t.nonempty = 0 then Latest
  else
    with_mu t (fun () ->
        match Hashtbl.find_opt t.chains key with
        | None -> Latest
        | Some ({ v_ts; _ } :: _) when v_ts <= read_ts -> Latest
        | Some chain -> (
            (* The head is invisible: surface the newest entry the snapshot
               can see. The base entry has ts 0, so the search always
               lands (every live snapshot postdates chain creation). *)
            match List.find_opt (fun v -> v.v_ts <= read_ts) chain with
            | Some v -> Older v.v_data
            | None -> Older None))

let keys_matching t pred =
  if Atomic.get t.nonempty = 0 then []
  else
    with_mu t (fun () ->
        List.sort String.compare
          (Hashtbl.fold (fun k _ acc -> if pred k then k :: acc else acc) t.chains []))

(* -- commit --------------------------------------------------------------- *)

let conflict t ~read_ts keys =
  if Atomic.get t.nonempty = 0 then None
  else
    with_mu t (fun () ->
        List.find_opt
          (fun k ->
            match Hashtbl.find_opt t.chains k with
            | Some ({ v_ts; _ } :: _) -> v_ts > read_ts
            | _ -> false)
          keys)

let commit t ~ts ~except ~pre writes =
  with_mu t (fun () ->
      if ts > t.floor then t.floor <- ts;
      t.commits_since_gc <- t.commits_since_gc + 1;
      let need =
        Hashtbl.fold (fun tok _ acc -> acc || tok <> except) t.snaps false
      in
      if need then
        List.iter
          (fun (key, post) ->
            let v = { v_ts = ts; v_data = post } in
            match Hashtbl.find_opt t.chains key with
            | Some chain ->
                Hashtbl.replace t.chains key (v :: chain);
                t.entries <- t.entries + 1
            | None ->
                Hashtbl.replace t.chains key [ v; { v_ts = 0; v_data = pre key } ];
                t.entries <- t.entries + 2;
                Atomic.set t.nonempty 1)
          writes;
      maybe_gc_locked t)

(* -- gauges --------------------------------------------------------------- *)

let chain_count t = Hashtbl.length t.chains
let dead_versions t = max 0 (t.entries - Hashtbl.length t.chains)
let reclaimed_total t = t.reclaimed
