(** Triggers (paper §6).

    Triggers are declared in classes and *activated* per object; an
    activation carries argument values and returns a trigger id usable for
    explicit deactivation. Kinds:

    - once-only (default): fires whenever its condition holds at the end of
      a transaction that touched the object (including the activating one),
      then deactivates;
    - [perpetual]: stays active; edge-triggered — fires when the condition
      *becomes* true across a transaction (the paper: "An active trigger
      fires when its condition becomes true"), which keeps self-touching
      actions from firing forever;
    - timed ([within t]): if the condition does not come true by the
      logical-clock deadline, the [timeout] action runs instead.

    A firing only schedules its action; actions run as their own
    transactions after the triggering one commits (weak coupling), so
    actions of aborted transactions never run — see
    {!Database.with_txn}. *)

open Types

exception Trigger_error of string

(** {1 Activation} *)

val activate : txn -> Ode_model.Oid.t -> string -> Ode_model.Value.t list -> int
(** Returns the trigger id. Raises {!Trigger_error} for an unknown trigger,
    arity mismatch, or a dead object. *)

val deactivate : txn -> int -> unit

val find_decl :
  db -> Ode_model.Oid.t -> string -> Ode_model.Schema.trigger * string
(** The declaration (resolved up the lineage) and its declaring class. *)

(** {1 Commit pipeline (used by {!Txn})} *)

val evaluate : txn -> firing list
(** Evaluate conditions for the committing transaction's touched objects;
    buffers bookkeeping writes (once-only deactivation, removal of
    activations on deleted objects) into the transaction. *)

val sync_after_commit : db -> txn -> unit
(** Fold the committed transaction's trigger writes into the in-memory
    activation tables. *)

val expired : db -> activation list
(** Active timed activations whose deadline has passed (used by
    {!Database.advance_time}). *)

val load_all : db -> unit
(** Rebuild the in-memory activation tables from the store (open time). *)

(**/**)

val encode_activation : activation -> string
val decode_activation : string -> activation
val register : db -> activation -> unit
val unregister : db -> int -> unit
