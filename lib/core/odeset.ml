module Value = Ode_model.Value

let empty = Value.VSet []
let of_list = Value.set_of_list

let to_list = function
  | Value.VSet vs -> vs
  | v -> invalid_arg (Fmt.str "odeset: not a set: %a" Value.pp v)

let add = Value.set_add
let remove = Value.set_remove
let mem = Value.set_mem
let cardinal s = List.length (to_list s)
let union a b = List.fold_left (fun acc v -> add v acc) a (to_list b)
let diff a b = List.fold_left (fun acc v -> remove v acc) a (to_list b)
let inter a b = of_list (List.filter (fun v -> mem v b) (to_list a))
let subset a b = List.for_all (fun v -> mem v b) (to_list a)
let iter f s = List.iter f (to_list s)

type worklist = {
  queue : Value.t Queue.t;
  visited : (Value.t, unit) Hashtbl.t; (* everything ever enqueued *)
}

let worklist s =
  let w = { queue = Queue.create (); visited = Hashtbl.create 64 } in
  iter
    (fun v ->
      Hashtbl.replace w.visited v ();
      Queue.add v w.queue)
    s;
  w

let insert w v =
  if Hashtbl.mem w.visited v then false
  else begin
    Hashtbl.replace w.visited v ();
    Queue.add v w.queue;
    true
  end

let iter_fix w f =
  let rec go () =
    match Queue.take_opt w.queue with
    | None -> ()
    | Some v ->
        f v;
        go ()
  in
  go ()

let seen w = of_list (Hashtbl.fold (fun v () acc -> v :: acc) w.visited [])
