(** Sets with iteration-sees-inserts semantics (paper §2.6 and §3.2).

    O++ sets are values ([set<stockitem*> items]) manipulated with insert /
    remove / membership and iterated with [forall]. The distinctive
    semantics is that "we allow iteration to also be performed over the
    elements that are added during the iteration, which allows the
    expression of recursive queries": {!iter_fix} is that worklist loop, and
    is how transitive closure / parts-explosion queries are written.

    This module operates on {!Ode_model.Value.t} sets so the same functions
    serve set-valued object fields and transient sets. *)

module Value = Ode_model.Value

val empty : Value.t
val of_list : Value.t list -> Value.t
val to_list : Value.t -> Value.t list
val add : Value.t -> Value.t -> Value.t
val remove : Value.t -> Value.t -> Value.t
val mem : Value.t -> Value.t -> bool
val cardinal : Value.t -> int
val union : Value.t -> Value.t -> Value.t
val diff : Value.t -> Value.t -> Value.t
val inter : Value.t -> Value.t -> Value.t
val subset : Value.t -> Value.t -> bool

val iter : (Value.t -> unit) -> Value.t -> unit
(** Plain iteration over a snapshot, in {!Value.compare} order. *)

(** {1 Fixpoint iteration} *)

type worklist
(** A mutable iteration state seeded from a set; insertions during iteration
    are visited exactly once each. *)

val worklist : Value.t -> worklist

val insert : worklist -> Value.t -> bool
(** [insert w v] adds [v] to the iteration if never seen; returns whether it
    was new. *)

val iter_fix : worklist -> (Value.t -> unit) -> unit
(** Drain the worklist: the body may {!insert}; iteration ends when no
    unvisited element remains (the least fixpoint of the body's
    insertions). *)

val seen : worklist -> Value.t
(** Every element ever inserted, as a set: after {!iter_fix} this is the
    closure. *)
