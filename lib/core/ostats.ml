(* Planner statistics ('S' key): per-extent cardinalities and per-index
   equi-depth key histograms.

   `analyze` takes a full committed-state scan and produces one encoded
   snapshot; the snapshot is written through an ordinary transaction on
   the [Keys.stats] key, so WAL logging, recovery, checkpointing,
   replication and dump/import all carry it with zero new protocol.
   [Store.apply_op] routes a replayed/committed/replicated Put of the
   key back here ([install]), which is what makes a standby's planner
   and a recovered store's planner see the same statistics the primary
   analyzed.

   Between analyzes the cardinality counters are maintained
   incrementally: every applied header create/delete bumps the class
   count and the mods-since-analyze tally ([note_create]/[note_delete],
   called from the same [Store.apply_op] choke point). Histograms are
   not maintained incrementally — [stale] reports when enough mods have
   accumulated that the planner should stop trusting them and fall back
   to its heuristics.

   Drift note: after a crash, the counters reset to the last persisted
   snapshot plus whatever the WAL tail replays; creates that were
   checkpointed after the last analyze are not re-counted. That is
   acceptable for estimates — staleness, not exactness, is the contract. *)

module Codec = Ode_util.Codec
module Key = Ode_util.Key
module Dist = Ode_util.Histogram.Dist
module Catalog = Ode_model.Catalog
module Schema = Ode_model.Schema
module Bptree = Ode_index.Bptree
open Types

let fresh () =
  {
    st_analyzed = false;
    st_base = 0;
    st_mods = 0;
    st_cards = Hashtbl.create 16;
    st_idx = Hashtbl.create 8;
    st_mu = Mutex.create ();
  }

(* -- incremental maintenance (called from Store.apply_op) ------------------- *)

let is_header_key key = String.length key = 17 && key.[0] = 'H'

let bump db key delta =
  let cls = (Keys.oid_of_header_key key).Ode_model.Oid.cls in
  let s = db.stats in
  Mutex.protect s.st_mu (fun () ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt s.st_cards cls) in
      Hashtbl.replace s.st_cards cls (max 0 (cur + delta));
      s.st_mods <- s.st_mods + 1)

let note_create db key = bump db key 1
let note_delete db key = bump db key (-1)

(* -- snapshot encoding ------------------------------------------------------ *)

let encode_snapshot ~base ~cards ~idx =
  let b = Buffer.create 512 in
  Codec.put_u8 b 1;
  Codec.put_int b base;
  Codec.put_u32 b (List.length cards);
  List.iter
    (fun (cid, n) ->
      Codec.put_u32 b cid;
      Codec.put_int b n)
    cards;
  Codec.put_u32 b (List.length idx);
  List.iter
    (fun (iid, st) ->
      Codec.put_u32 b iid;
      Codec.put_int b st.is_total;
      Codec.put_int b st.is_distinct;
      Dist.encode b st.is_hist)
    idx;
  Buffer.contents b

(* Installing a snapshot zeroes the mods tally, including at a clean
   reopen — churn committed after the last analyze but before a restart
   is not counted against staleness (the next session's own mods are).
   Tracking it would mean rewriting the snapshot at checkpoint/close;
   noted as open in the roadmap. *)
let install db payload =
  let c = Codec.cursor payload in
  (match Codec.get_u8 c with
  | 1 -> ()
  | v -> raise (Codec.Corrupt (Printf.sprintf "stats: bad snapshot version %d" v)));
  let base = Codec.get_int c in
  let ncards = Codec.get_u32 c in
  let cards =
    List.init ncards (fun _ ->
        let cid = Codec.get_u32 c in
        let n = Codec.get_int c in
        (cid, n))
  in
  let nidx = Codec.get_u32 c in
  let idx =
    List.init nidx (fun _ ->
        let iid = Codec.get_u32 c in
        let is_total = Codec.get_int c in
        let is_distinct = Codec.get_int c in
        let is_hist = Dist.decode c in
        (iid, { is_total; is_distinct; is_hist }))
  in
  let s = db.stats in
  Mutex.protect s.st_mu (fun () ->
      Hashtbl.reset s.st_cards;
      Hashtbl.reset s.st_idx;
      List.iter (fun (cid, n) -> Hashtbl.replace s.st_cards cid n) cards;
      List.iter (fun (iid, st) -> Hashtbl.replace s.st_idx iid st) idx;
      s.st_base <- base;
      s.st_mods <- 0;
      s.st_analyzed <- true)

(* -- analyze (full committed-state scan) ------------------------------------ *)

(* The scan reads the committed B+trees directly: header entries verify
   liveness through the heap fetch inside [Kv.iter_prefix], index valkeys
   stream out of the index tree already in sorted order (which is exactly
   what [Dist.of_sorted] wants). Runs under no transaction — analyze
   summarizes latest-committed state, which is the state the planner's
   candidate streams start from. *)
let compute db =
  let cards =
    List.filter_map
      (fun (c : Schema.cls) ->
        let n = ref 0 in
        Kv.iter_prefix db (Keys.header_prefix_class c.Schema.id) (fun _ _ ->
            incr n;
            true);
        if !n = 0 then None else Some (c.Schema.id, !n))
      (Catalog.all db.catalog)
  in
  let base = List.fold_left (fun acc (_, n) -> acc + n) 0 cards in
  let nindexes = List.length (Catalog.indexes db.catalog) in
  let idx =
    List.init nindexes (fun iid ->
        let prefix = Key.of_int iid in
        let plen = String.length prefix in
        let keys = ref [] in
        let n = ref 0 in
        Bptree.iter_prefix db.idx prefix (fun k _ ->
            (* tree key = idx-id (8) ^ valkey ^ oid-key (16) *)
            let vlen = String.length k - plen - 16 in
            if vlen >= 0 then begin
              keys := String.sub k plen vlen :: !keys;
              incr n
            end;
            true);
        let arr = Array.of_list (List.rev !keys) in
        let hist = Dist.of_sorted arr in
        (iid, { is_total = !n; is_distinct = Dist.distinct hist; is_hist = hist }))
  in
  encode_snapshot ~base ~cards ~idx

(* -- planner-facing reads --------------------------------------------------- *)

let analyzed db = db.stats.st_analyzed

(* Histograms go stale once the mods since analyze are a meaningful
   fraction of the analyzed population (or an absolute flood on a small
   one). The planner then falls back to heuristics rather than trusting
   distributions that no longer describe the data. *)
let stale db =
  let s = db.stats in
  Mutex.protect s.st_mu (fun () ->
      (not s.st_analyzed) || s.st_mods > max 100 (s.st_base / 5))

let card db cls_id =
  let s = db.stats in
  Mutex.protect s.st_mu (fun () -> Hashtbl.find_opt s.st_cards cls_id)

let idx_stat db idx_id =
  let s = db.stats in
  Mutex.protect s.st_mu (fun () -> Hashtbl.find_opt s.st_idx idx_id)

let mods db =
  let s = db.stats in
  Mutex.protect s.st_mu (fun () -> s.st_mods)

let base db =
  let s = db.stats in
  Mutex.protect s.st_mu (fun () -> s.st_base)

(* One-line report for the shell's `.analyze` acknowledgement. *)
let describe db =
  let s = db.stats in
  Mutex.protect s.st_mu (fun () ->
      if not s.st_analyzed then "statistics: none (run .analyze)"
      else
        let nidx = Hashtbl.length s.st_idx in
        Printf.sprintf "statistics: %d objects across %d extents, %d index histogram%s, %d mods since analyze"
          s.st_base (Hashtbl.length s.st_cards) nidx
          (if nidx = 1 then "" else "s")
          s.st_mods)
