(** Cluster iteration — the paper's [forall x in C suchthat e by e'] (§3).

    Iteration visits the cluster (type extent) of a class; with [~deep:true]
    it also visits every subcluster, mirroring the class hierarchy
    (§3.1.1). The [suchthat] predicate is planned through {!Planner} (index
    probe when possible, full scan otherwise) but is always re-evaluated
    per candidate against the transaction's own view, so index staleness
    with respect to uncommitted updates never produces wrong answers.

    With [~fixpoint:true], objects inserted into the cluster by the loop
    body are themselves visited — the paper's mechanism for expressing
    recursive (least-fixpoint) queries (§3.2). Fixpoint iteration requires
    an active transaction and is incompatible with [by]. *)

open Types

val run :
  db ->
  ?txn:txn ->
  ?env:(string * Ode_model.Value.t) list ->
  var:string ->
  cls:string ->
  ?deep:bool ->
  ?suchthat:Ode_lang.Ast.expr ->
  ?filter:(Ode_model.Oid.t -> bool) ->
  ?by:Ode_lang.Ast.expr * Ode_lang.Ast.order ->
  ?fixpoint:bool ->
  (Ode_model.Oid.t -> unit) ->
  unit
(** [txn] defaults to the database's active transaction, if any. [env]
    provides outer loop variables (for join inner loops). [filter] is an
    extra OCaml-side predicate for EDSL users. *)

val fold :
  db ->
  ?txn:txn ->
  ?env:(string * Ode_model.Value.t) list ->
  var:string ->
  cls:string ->
  ?deep:bool ->
  ?suchthat:Ode_lang.Ast.expr ->
  ?filter:(Ode_model.Oid.t -> bool) ->
  ?by:Ode_lang.Ast.expr * Ode_lang.Ast.order ->
  init:'a ->
  ('a -> Ode_model.Oid.t -> 'a) ->
  'a

val to_list :
  db ->
  ?txn:txn ->
  ?env:(string * Ode_model.Value.t) list ->
  var:string ->
  cls:string ->
  ?deep:bool ->
  ?suchthat:Ode_lang.Ast.expr ->
  ?filter:(Ode_model.Oid.t -> bool) ->
  ?by:Ode_lang.Ast.expr * Ode_lang.Ast.order ->
  unit ->
  Ode_model.Oid.t list

val count :
  db ->
  ?txn:txn ->
  ?deep:bool ->
  ?suchthat:Ode_lang.Ast.expr ->
  var:string ->
  cls:string ->
  unit ->
  int

val exists :
  db ->
  ?txn:txn ->
  ?env:(string * Ode_model.Value.t) list ->
  ?deep:bool ->
  ?suchthat:Ode_lang.Ast.expr ->
  var:string ->
  cls:string ->
  unit ->
  bool
(** Is there at least one qualifying object? Stops scanning — and reading
    pages — at the first match. *)

val run_join :
  db ->
  ?txn:txn ->
  ?env:(string * Ode_model.Value.t) list ->
  outer:string * string * bool ->
  inner:string * string * bool ->
  ?outer_suchthat:Ode_lang.Ast.expr ->
  ?inner_suchthat:Ode_lang.Ast.expr ->
  (Ode_model.Oid.t -> Ode_model.Oid.t -> unit) ->
  unit
(** Planned two-extent join ([(var, class, deep)] per side) executing the
    {!Planner.plan_join} strategy: nested loop, deref/membership fusion, or
    a hash join (one streamed build pass over the inner extent, probe per
    outer row). Pairs are emitted outer-major; every pair re-checks the
    full [inner_suchthat] with both variables bound, so a fused strategy
    produces exactly the nested loop's matches. *)

val explain_join :
  db ->
  ?txn:txn ->
  ?env:(string * Ode_model.Value.t) list ->
  outer:string * string * bool ->
  inner:string * string * bool ->
  ?outer_suchthat:Ode_lang.Ast.expr ->
  ?inner_suchthat:Ode_lang.Ast.expr ->
  unit ->
  string
(** The join plan {!Planner.explain_join} would execute right now. *)

val join2 :
  db ->
  ?txn:txn ->
  outer:string * string ->
  inner:string * string ->
  ?deep:bool ->
  ?suchthat:Ode_lang.Ast.expr ->
  (Ode_model.Oid.t -> Ode_model.Oid.t -> unit) ->
  unit
(** [join2 db ~outer:(x, C1) ~inner:(y, C2) ~suchthat f] — the paper's
    multiple-loop-variable [forall], routed through {!run_join}: a
    nested iteration where the inner loop is planned with the outer
    binding known (an equi-join conjunct [y.f == x.g] becomes an index
    probe per outer row when [C2(f)] is indexed), fused or hash-joined
    when the planner prices that cheaper. *)

val explain :
  db ->
  ?env:(string * Ode_model.Value.t) list ->
  var:string ->
  cls:string ->
  ?deep:bool ->
  ?suchthat:Ode_lang.Ast.expr ->
  unit ->
  string
(** The plan {!Planner.explain} would execute right now. *)

(** {1 Per-query profiling (EXPLAIN ANALYZE)}

    {!profile} runs a query and attributes elapsed time and {!Ode_util.Stats}
    deltas to each plan node (access, filter, order, output). Attribution is
    mark-based and exact: every nanosecond and every counter bump between
    query start and finish lands in exactly one node, so the per-node values
    sum to the query totals. *)

type node_stats = {
  ns_kind : Planner.node_kind;
  ns_label : string;
  mutable ns_rows : int;  (** rows this node produced (candidates for access,
                              survivors for filter, emitted rows for output) *)
  mutable ns_ns : int;  (** elapsed nanoseconds attributed to this node *)
  ns_stats : Ode_util.Stats.snapshot;  (** counter delta attributed to this node *)
}

type profile = {
  pf_plan : string;  (** {!Planner.explain} of the executed plan *)
  pf_nodes : node_stats list;
  pf_rows : int;
  pf_total_ns : int;
  pf_stats : Ode_util.Stats.snapshot;
}

val profile :
  db ->
  ?txn:txn ->
  ?env:(string * Ode_model.Value.t) list ->
  var:string ->
  cls:string ->
  ?deep:bool ->
  ?suchthat:Ode_lang.Ast.expr ->
  ?by:Ode_lang.Ast.expr * Ode_lang.Ast.order ->
  ?body:(Ode_model.Oid.t -> unit) ->
  unit ->
  profile
(** Run the query (with [body] as the loop body, defaulting to a no-op) and
    return the per-node attribution. *)

val profile_to_string : profile -> string
(** The plan line plus a per-node table (rows, time, pages, probes, scanned,
    fetched, cursor pages) with a total row — the shell's [.profile]. *)

val profile_to_json : profile -> string
(** The same attribution as one JSON object
    ([{"plan",...,"nodes":[{label,rows,ns,...}]}]) for the slow-query log. *)

val take_last_profile : unit -> profile option
(** Take (and clear) the profile of the last query run on the calling
    domain. Populated only while {!Ode_util.Slowlog} is armed — [run]
    then executes queries profiled so the session layer can attach the
    per-plan-node breakdown to a slow-query entry after the fact. *)

(** {1 Aggregates}

    The paper's §3.1 aggregate loops ("average income of all persons"),
    packaged: [expr] is evaluated per qualifying object with the loop
    variable bound; [Null] results are skipped (like SQL aggregates skip
    NULL). *)

val aggregate :
  db ->
  ?txn:txn ->
  ?env:(string * Ode_model.Value.t) list ->
  var:string ->
  cls:string ->
  ?deep:bool ->
  ?suchthat:Ode_lang.Ast.expr ->
  expr:Ode_lang.Ast.expr ->
  init:'a ->
  combine:('a -> Ode_model.Value.t -> 'a) ->
  unit ->
  'a

val sum :
  db -> ?txn:txn -> ?env:(string * Ode_model.Value.t) list -> var:string -> cls:string ->
  ?deep:bool -> ?suchthat:Ode_lang.Ast.expr -> expr:Ode_lang.Ast.expr -> unit -> float
(** Raises {!Ode_model.Eval.Error} when [expr] yields a non-numeric,
    non-null value. *)

val average :
  db -> ?txn:txn -> ?env:(string * Ode_model.Value.t) list -> var:string -> cls:string ->
  ?deep:bool -> ?suchthat:Ode_lang.Ast.expr -> expr:Ode_lang.Ast.expr -> unit -> float option
(** [None] when no object qualifies. *)

val minimum :
  db -> ?txn:txn -> ?env:(string * Ode_model.Value.t) list -> var:string -> cls:string ->
  ?deep:bool -> ?suchthat:Ode_lang.Ast.expr -> expr:Ode_lang.Ast.expr -> unit ->
  Ode_model.Value.t option

val maximum :
  db -> ?txn:txn -> ?env:(string * Ode_model.Value.t) list -> var:string -> cls:string ->
  ?deep:bool -> ?suchthat:Ode_lang.Ast.expr -> expr:Ode_lang.Ast.expr -> unit ->
  Ode_model.Value.t option

val group_count :
  db -> ?txn:txn -> ?env:(string * Ode_model.Value.t) list -> var:string -> cls:string ->
  ?deep:bool -> ?suchthat:Ode_lang.Ast.expr -> expr:Ode_lang.Ast.expr -> unit ->
  (Ode_model.Value.t * int) list
(** Objects per distinct value of [expr], sorted by value. *)
