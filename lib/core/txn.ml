module Wal = Ode_storage.Wal
module Heap = Ode_storage.Heap
module Bptree = Ode_index.Bptree
open Types

let h_commit = Ode_util.Histogram.create "txn.commit"

let begin_ db =
  if db.closed then raise Db_closed;
  (match db.active with
  | Some _ -> invalid_arg "txn: a transaction is already active"
  | None -> ());
  let txn =
    {
      xid = db.next_xid;
      tdb = db;
      tro = false;
      writes = Hashtbl.create 64;
      created = [];
      touched = Hashtbl.create 32;
      tstate = `Active;
      catalog_dirty = false;
      meta_dirty = false;
    }
  in
  db.next_xid <- db.next_xid + 1;
  db.active <- Some txn;
  Ode_util.Trace.instant ~cat:"txn" "txn.begin";
  txn

(* A detached read-only transaction: it never occupies the engine's single
   [db.active] slot and never allocates an xid, so any number of them can
   run concurrently (on reader domains) alongside one writer-slot
   transaction. The write choke points in {!Store} raise {!Read_only_txn}
   against it before touching any shared state. *)
let begin_read db =
  if db.closed then raise Db_closed;
  {
    xid = 0;
    tdb = db;
    tro = true;
    writes = Hashtbl.create 1;
    created = [];
    touched = Hashtbl.create 1;
    tstate = `Active;
    catalog_dirty = false;
    meta_dirty = false;
  }

let active db = db.active

let active_exn db =
  match db.active with Some t -> t | None -> raise No_active_txn

let require_active txn =
  match txn.tstate with
  | `Active -> ()
  | `Committed -> raise (Txn_aborted "transaction already committed")
  | `Aborted -> raise (Txn_aborted "transaction already aborted")

let abort txn =
  require_active txn;
  txn.tstate <- `Aborted;
  (* A detached read txn never owned the active slot — it must not clear a
     slot transaction that may be live concurrently. *)
  if not txn.tro then txn.tdb.active <- None;
  Ode_util.Trace.instant ~cat:"txn" "txn.abort"

let checkpoint db =
  Ode_util.Trace.with_span ~cat:"txn" "txn.checkpoint" (fun () ->
      Heap.flush db.kv_heap;
      Bptree.flush db.kv_dir;
      Bptree.flush db.idx;
      (* The record carries the durable LSN so replay over a lost truncation
         can reconcile the commit count (see wal.mli). Appending bumps no
         LSN itself; after the sync every prior commit is durable, so the
         value logged is exact. *)
      Wal.append db.wal (Wal.Checkpoint (Wal.last_lsn db.wal));
      Wal.sync db.wal;
      Wal.reset db.wal)

let wal_bytes db = Wal.size_bytes db.wal

let encode_meta (m : meta) =
  let b = Buffer.create 16 in
  Ode_util.Codec.put_int b m.next_tid;
  Ode_util.Codec.put_int b m.clock;
  Buffer.contents b

let decode_meta s =
  let c = Ode_util.Codec.cursor s in
  let next_tid = Ode_util.Codec.get_int c in
  let clock = Ode_util.Codec.get_int c in
  { next_tid; clock }

(* The commit body, split into prepare and ack phases. Prepare runs the
   integrity checks, evaluates trigger conditions, logs the write set and
   applies it to the committed structures. [durable] decides the ack: under
   eager (Full) durability the WAL fsync sits between logging and applying —
   the classic sync-before-apply. Deferred commits skip it; the records stay
   pending in the WAL until a shared {!ack} (or a checkpoint, or the buffer
   pool's write-ahead hook) makes the whole batch durable with one fsync. *)
let commit_slot ~durable txn =
  let db = txn.tdb in
  (* 0. A replica rejects local writes before any effect: read-only
        transactions (empty write set, no DDL) still commit, so remote
        sessions can use begin/commit around queries. *)
  if
    db.read_only
    && (Hashtbl.length txn.writes > 0 || txn.catalog_dirty || txn.meta_dirty)
  then begin
    abort txn;
    raise Read_only_store
  end;
  (* 1. Integrity: a violation aborts and rolls back (trivially, since
        nothing was applied). *)
  (match Constraints.check_txn txn with
  | () -> ()
  | exception e ->
      abort txn;
      raise e);
  (* 2. Trigger conditions over the post-state; bookkeeping writes (once-only
        deactivations etc.) join this transaction. *)
  let firings = Triggers.evaluate txn in
  (* 3. Engine metadata modified by this transaction. *)
  if txn.catalog_dirty then
    Hashtbl.replace txn.writes Keys.catalog (Put (Ode_model.Catalog.encode db.catalog));
  if txn.meta_dirty then Hashtbl.replace txn.writes Keys.meta (Put (encode_meta db.meta));
  (* 4. Log and make durable. *)
  if Hashtbl.length txn.writes > 0 then begin
    Wal.append db.wal (Wal.Begin txn.xid);
    Hashtbl.iter
      (fun key op ->
        match op with
        | Put payload -> Wal.append db.wal (Wal.Put (txn.xid, key, payload))
        | Del -> Wal.append db.wal (Wal.Delete (txn.xid, key)))
      txn.writes;
    (* The commit record carries the ambient trace id of the request that
       drove this transaction, so a standby replaying the shipped batch
       can stamp its apply spans with the originating client's id. *)
    Wal.append db.wal (Wal.Commit (txn.xid, Ode_util.Trace.current_trace_id ()));
    if durable then Wal.sync db.wal;
    (* 5. Apply to the committed structures. *)
    Hashtbl.iter (fun key op -> Store.apply_op db key op) txn.writes;
    Triggers.sync_after_commit db txn
  end;
  txn.tstate <- `Committed;
  db.active <- None;
  (* 6. Bound recovery time. *)
  if Wal.size_bytes db.wal > db.wal_auto_checkpoint then checkpoint db;
  firings

(* Detached read txns commit trivially: the Store guards kept the write set
   empty, there is nothing to log, no slot to release, and no checkpoint to
   consider (checkpoints mutate the WAL — writer-only). *)
let commit_active ~durable txn =
  if txn.tro then begin
    if Hashtbl.length txn.writes > 0 || txn.catalog_dirty || txn.meta_dirty then begin
      txn.tstate <- `Aborted;
      raise Read_only_txn
    end;
    txn.tstate <- `Committed;
    []
  end
  else commit_slot ~durable txn

let timed_commit txn ~durable =
  require_active txn;
  Ode_util.Histogram.time h_commit (fun () ->
      Ode_util.Trace.with_span ~cat:"txn" "txn.commit" (fun () -> commit_active ~durable txn))

let commit txn = timed_commit txn ~durable:(txn.tdb.durability = Full)
let commit_deferred txn = timed_commit txn ~durable:false

let pending_commits db = Wal.pending_commits db.wal

let ack db =
  if Wal.pending_commits db.wal > 0 then Wal.sync db.wal
