module Wal = Ode_storage.Wal
module Heap = Ode_storage.Heap
module Bptree = Ode_index.Bptree
module Oid = Ode_model.Oid
open Types

let h_commit = Ode_util.Histogram.create "txn.commit"

(* The engine latch. Readers hold the shared side for the duration of a
   request (scans walk B+tree leaf chains that must stay structurally
   quiescent); the mutating paths — commit apply, checkpoint, DDL,
   replication apply — take the exclusive side only around the mutation
   itself, so a long-running writer statement no longer blocks readers:
   its writes build up in the private overlay and only the (short) apply
   holds readers out. [in_excl] makes the exclusive side re-entrant for
   the single mutating domain (a DDL's internal commit, a commit's
   auto-checkpoint): only that domain ever sets it, readers never take
   the exclusive side, so the unlatched read of the flag is safe. *)
let with_excl db f =
  if db.in_excl then f ()
  else
    Ode_util.Rwlock.write db.latch (fun () ->
        db.in_excl <- true;
        Fun.protect ~finally:(fun () -> db.in_excl <- false) f)

let release_snap txn =
  if txn.snap <> 0 then begin
    Mvcc.release txn.tdb.mvcc txn.snap;
    txn.snap <- 0
  end

(* Drop a finished write txn from the registry; [db.active] keeps pointing
   at the most recently begun still-open write txn only as a default for
   embedded callers that pass no transaction. *)
let unregister txn =
  if not txn.tro then begin
    let db = txn.tdb in
    Hashtbl.remove db.wtxns txn.xid;
    match db.active with Some t when t == txn -> db.active <- None | _ -> ()
  end

let begin_ db =
  if db.closed then raise Db_closed;
  let read_ts = Wal.last_lsn db.wal in
  let txn =
    {
      xid = db.next_xid;
      tdb = db;
      tro = false;
      read_ts;
      snap = Mvcc.snapshot db.mvcc ~read_ts;
      writes = Hashtbl.create 64;
      created = [];
      touched = Hashtbl.create 32;
      tstate = `Active;
      catalog_dirty = false;
      meta_dirty = false;
    }
  in
  db.next_xid <- db.next_xid + 1;
  Hashtbl.replace db.wtxns txn.xid txn;
  db.active <- Some txn;
  Ode_util.Stats.incr_txn_begins ();
  Ode_util.Trace.instant ~cat:"txn" "txn.begin";
  txn

(* A detached read-only transaction: never registers as a writer and never
   allocates an xid, so any number can run concurrently (on reader domains)
   alongside the write transactions. The write choke points in {!Store}
   raise {!Read_only_txn} against it before touching any shared state. Its
   snapshot is registered like any other so the MVCC garbage collector
   keeps the versions it can still see. *)
let begin_read db =
  if db.closed then raise Db_closed;
  let read_ts = Wal.last_lsn db.wal in
  {
    xid = 0;
    tdb = db;
    tro = true;
    read_ts;
    snap = Mvcc.snapshot db.mvcc ~read_ts;
    writes = Hashtbl.create 1;
    created = [];
    touched = Hashtbl.create 1;
    tstate = `Active;
    catalog_dirty = false;
    meta_dirty = false;
  }

let active db = db.active

let active_exn db =
  match db.active with Some t -> t | None -> raise No_active_txn

let open_writers db = Hashtbl.fold (fun _ t acc -> t :: acc) db.wtxns []

let require_active txn =
  match txn.tstate with
  | `Active -> ()
  | `Committed -> raise (Txn_aborted "transaction already committed")
  | `Aborted -> raise (Txn_aborted "transaction already aborted")

let abort txn =
  require_active txn;
  txn.tstate <- `Aborted;
  release_snap txn;
  unregister txn;
  Ode_util.Trace.instant ~cat:"txn" "txn.abort"

let checkpoint db =
  Ode_util.Trace.with_span ~cat:"txn" "txn.checkpoint" (fun () ->
      with_excl db (fun () ->
          Heap.flush db.kv_heap;
          Bptree.flush db.kv_dir;
          Bptree.flush db.idx;
          (* The record carries the durable LSN so replay over a lost truncation
             can reconcile the commit count (see wal.mli). Appending bumps no
             LSN itself; after the sync every prior commit is durable, so the
             value logged is exact. *)
          Wal.append db.wal (Wal.Checkpoint (Wal.last_lsn db.wal));
          Wal.sync db.wal;
          Wal.reset db.wal))

let wal_bytes db = Wal.size_bytes db.wal

let encode_meta (m : meta) =
  let b = Buffer.create 16 in
  Ode_util.Codec.put_int b m.next_tid;
  Ode_util.Codec.put_int b m.clock;
  Buffer.contents b

let decode_meta s =
  let c = Ode_util.Codec.cursor s in
  let next_tid = Ode_util.Codec.get_int c in
  let clock = Ode_util.Codec.get_int c in
  { next_tid; clock }

(* The catalog, meta and stats singletons are excluded from conflict
   detection and version chains: catalog/meta are re-encoded from the
   in-memory mirrors at every commit (so two concurrent creators both
   writing 'C' is not a logical conflict — the mirrors already merged
   their oid allocations), snapshot reads of schema go through the
   mirrors, not the KV, and the stats snapshot is advisory planner input
   that always supersedes wholesale. *)
let versioned key = key <> Keys.catalog && key <> Keys.meta && key <> Keys.stats

let describe_key key =
  if key = "" then "a key"
  else
    match key.[0] with
    | 'H' | 'V' -> (
        match Keys.oid_of_header_key key with
        | oid -> Format.asprintf "object %a" Oid.pp oid
        | exception _ -> "an object")
    | 'R' -> Printf.sprintf "root %s" (String.sub key 1 (String.length key - 1))
    | 'I' -> "an index entry"
    | 'T' -> "a trigger activation"
    | _ -> "a key"

(* The commit body, split into prepare and ack phases. Prepare runs the
   integrity checks, evaluates trigger conditions, detects write-write
   conflicts (first-committer-wins against the transaction's snapshot),
   logs the write set and applies it to the committed structures. The
   commit timestamp is the commit's own LSN, embedded in the WAL commit
   record so recovery and standbys reconstruct the same version order.
   [durable] decides the ack: under eager (Full) durability the WAL fsync
   sits between logging and applying — the classic sync-before-apply.
   Deferred commits skip it; the records stay pending in the WAL until a
   shared {!ack} (or a checkpoint, or the buffer pool's write-ahead hook)
   makes the whole batch durable with one fsync.

   Only the apply itself (version-chain recording, store mutation, trigger
   mirror sync) runs under the exclusive latch — constraint checking,
   logging and even the fsync happen with readers running. That is safe
   because commits are serialized on one domain and readers never look at
   the WAL; it is what keeps snapshot readers from stalling behind a
   writer's fsync. *)
let commit_slot ~durable txn =
  let db = txn.tdb in
  (* 0. A replica rejects local writes before any effect: read-only
        transactions (empty write set, no DDL) still commit, so remote
        sessions can use begin/commit around queries. *)
  if
    db.read_only
    && (Hashtbl.length txn.writes > 0 || txn.catalog_dirty || txn.meta_dirty)
  then begin
    abort txn;
    raise Read_only_store
  end;
  (* 1. Integrity: a violation aborts and rolls back (trivially, since
        nothing was applied). *)
  (match Constraints.check_txn txn with
  | () -> ()
  | exception e ->
      abort txn;
      raise e);
  (* 2. Trigger conditions over the post-state; bookkeeping writes (once-only
        deactivations etc.) join this transaction. *)
  let firings = Triggers.evaluate txn in
  (* 3. Engine metadata modified by this transaction. *)
  if txn.catalog_dirty then
    Hashtbl.replace txn.writes Keys.catalog (Put (Ode_model.Catalog.encode db.catalog));
  if txn.meta_dirty then Hashtbl.replace txn.writes Keys.meta (Put (encode_meta db.meta));
  if Hashtbl.length txn.writes > 0 then begin
    (* 4. First-committer-wins: if any key this transaction wrote was
          committed past its snapshot, abort with a retryable conflict.
          The check runs while this transaction's snapshot is still
          registered, so the GC horizon cannot have reclaimed a chain the
          check needs (any conflicting head is newer than our read_ts,
          which bounds the horizon). *)
    let keys = Hashtbl.fold (fun k _ acc -> if versioned k then k :: acc else acc) txn.writes [] in
    (match Mvcc.conflict db.mvcc ~read_ts:txn.read_ts keys with
    | Some key ->
        abort txn;
        Ode_util.Stats.incr_txn_conflicts ();
        Ode_util.Trace.instant ~cat:"txn" "txn.conflict";
        raise
          (Txn_conflict
             (Printf.sprintf "write-write conflict on %s: a concurrent transaction committed first"
                (describe_key key)))
    | None -> ());
    (* 5. Log and make durable. The commit timestamp is the LSN this very
          commit record receives when appended. *)
    let cts = Wal.last_lsn db.wal + 1 in
    Wal.append db.wal (Wal.Begin txn.xid);
    Hashtbl.iter
      (fun key op ->
        match op with
        | Put payload -> Wal.append db.wal (Wal.Put (txn.xid, key, payload))
        | Del -> Wal.append db.wal (Wal.Delete (txn.xid, key)))
      txn.writes;
    (* The commit record carries the ambient trace id of the request that
       drove this transaction, so a standby replaying the shipped batch
       can stamp its apply spans with the originating client's id. *)
    Wal.append db.wal (Wal.Commit (txn.xid, Ode_util.Trace.current_trace_id (), cts));
    if durable then Wal.sync db.wal;
    (* 6. Apply to the committed structures under the exclusive latch:
          pre-images go into the version chains first (while the KV still
          holds them), then the writes land. *)
    with_excl db (fun () ->
        Mvcc.commit db.mvcc ~ts:cts ~except:txn.snap ~pre:(Store.committed_image db)
          (Hashtbl.fold
             (fun key op acc ->
               if versioned key then
                 (key, match op with Put s -> Some s | Del -> None) :: acc
               else acc)
             txn.writes []);
        Hashtbl.iter (fun key op -> Store.apply_op db key op) txn.writes;
        Triggers.sync_after_commit db txn)
  end;
  txn.tstate <- `Committed;
  release_snap txn;
  unregister txn;
  (* 7. Bound recovery time. *)
  if Wal.size_bytes db.wal > db.wal_auto_checkpoint then checkpoint db;
  firings

(* Detached read txns commit trivially: the Store guards kept the write set
   empty, there is nothing to log and no checkpoint to consider — only the
   snapshot registration to drop. *)
let commit_active ~durable txn =
  if txn.tro then begin
    if Hashtbl.length txn.writes > 0 || txn.catalog_dirty || txn.meta_dirty then begin
      txn.tstate <- `Aborted;
      release_snap txn;
      raise Read_only_txn
    end;
    txn.tstate <- `Committed;
    release_snap txn;
    []
  end
  else commit_slot ~durable txn

let timed_commit txn ~durable =
  require_active txn;
  Ode_util.Histogram.time h_commit (fun () ->
      Ode_util.Trace.with_span ~cat:"txn" "txn.commit" (fun () -> commit_active ~durable txn))

let commit txn = timed_commit txn ~durable:(txn.tdb.durability = Full)
let commit_deferred txn = timed_commit txn ~durable:false

let pending_commits db = Wal.pending_commits db.wal

let ack db =
  if Wal.pending_commits db.wal > 0 then Wal.sync db.wal
