module Oid = Ode_model.Oid
module Value = Ode_model.Value
module Schema = Ode_model.Schema
module Catalog = Ode_model.Catalog
module Bptree = Ode_index.Bptree
open Types

let run db =
  let problems = ref [] in
  let bad fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in

  (* 0. Directory <-> heap: every directory entry resolves to a readable
     heap record, and no heap record lacks a directory entry (recovery's
     orphan sweep guarantees the latter after a crash). *)
  let dir_entries = ref 0 in
  Ode_index.Bptree.iter_range db.kv_dir (fun key rid_s ->
      incr dir_entries;
      (match Ode_storage.Heap.get db.kv_heap (Kv.decode_rid rid_s) with
      | Some raw ->
          if Kv.decode_record key raw = None then
            bad "directory key %S points at a record owned by another key" key
      | None -> bad "directory key %S points at a dead heap record" key
      | exception Ode_util.Codec.Corrupt msg ->
          bad "directory key %S: corrupt heap record (%s)" key msg);
      true);
  let heap_records = Ode_storage.Heap.record_count db.kv_heap in
  if heap_records <> !dir_entries then
    bad "heap has %d records but the directory has %d entries" heap_records !dir_entries;

  (* 1. Object headers and versions. *)
  let headers : (Oid.t, Store.header) Hashtbl.t = Hashtbl.create 256 in
  Kv.iter_prefix db "H" (fun key payload ->
      let oid = Keys.oid_of_header_key key in
      (match Store.decode_header payload with
      | h ->
          Hashtbl.replace headers oid h;
          if Catalog.find_by_id db.catalog h.Store.hcls = None then
            bad "object %a: unknown class id %d" Oid.pp oid h.Store.hcls;
          if oid.Oid.cls <> h.Store.hcls then
            bad "object %a: header class %d disagrees with oid" Oid.pp oid h.Store.hcls;
          if not (List.mem h.Store.hcurrent h.Store.hversions) then
            bad "object %a: current version %d not in version list" Oid.pp oid h.Store.hcurrent;
          if List.length (List.sort_uniq Int.compare h.Store.hversions)
             <> List.length h.Store.hversions
          then bad "object %a: duplicate version numbers" Oid.pp oid;
          List.iter
            (fun ver ->
              match Kv.get db (Keys.version oid ver) with
              | Some _ -> ()
              | None -> bad "object %a: version %d record missing" Oid.pp oid ver)
            h.Store.hversions
      | exception _ -> bad "object %a: header does not decode" Oid.pp oid);
      true);

  (* 2. Orphan version records. *)
  Kv.iter_prefix db "V" (fun key _ ->
      (* key = 'V' ++ 16-byte oid ++ 8-byte version *)
      if String.length key = 25 then begin
        let oid = Oid.of_key (String.sub key 1 16) in
        match Hashtbl.find_opt headers oid with
        | None -> bad "version record for dead object %a" Oid.pp oid
        | Some h ->
            let ver =
              let v = ref 0L in
              String.iter
                (fun ch -> v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code ch)))
                (String.sub key 17 8);
              Int64.to_int (Int64.logxor !v Int64.min_int)
            in
            if not (List.mem ver h.Store.hversions) then
              bad "object %a: orphan version record %d" Oid.pp oid ver
      end
      else bad "malformed version key (%d bytes)" (String.length key);
      true);

  (* 3. Index entries point at live, matching objects... *)
  let index_entries = Hashtbl.create 256 in
  Bptree.iter_range db.idx (fun key _ ->
      (* key = 8-byte idx id ++ value key ++ 16-byte oid key (no 'I' tag) *)
      if String.length key < 25 then bad "malformed index key"
      else begin
        let idx_id =
          let v = ref 0L in
          String.iter
            (fun ch -> v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code ch)))
            (String.sub key 0 8);
          Int64.to_int (Int64.logxor !v Int64.min_int)
        in
        let oid = Keys.oid_of_index_key key in
        let valkey = String.sub key 8 (String.length key - 24) in
        Hashtbl.replace index_entries (idx_id, valkey, oid) ();
        match List.nth_opt (Catalog.indexes db.catalog) idx_id with
        | None -> bad "index entry for unknown index id %d" idx_id
        | Some (_, field) -> (
            match Hashtbl.find_opt headers oid with
            | None -> bad "index %d: entry for dead object %a" idx_id Oid.pp oid
            | Some _ -> (
                match Store.get_field db None oid field with
                | Some v when Value.index_key v = valkey -> ()
                | Some v ->
                    bad "index %d: stale entry for %a (field %s now %a)" idx_id Oid.pp oid field
                      Value.pp v
                | None -> bad "index %d: object %a lacks field %s" idx_id Oid.pp oid field))
      end;
      true);

  (* ... and every object is covered by every applicable index. *)
  Hashtbl.iter
    (fun oid _ ->
      match Catalog.find_by_id db.catalog oid.Oid.cls with
      | None -> ()
      | Some cls ->
          List.iter
            (fun (idx_id, field) ->
              match Store.get_field db None oid field with
              | Some v ->
                  if not (Hashtbl.mem index_entries (idx_id, Value.index_key v, oid)) then
                    bad "index %d: missing entry for %a (%s = %a)" idx_id Oid.pp oid field
                      Value.pp v
              | None -> ())
            (Store.applicable_indexes db cls))
    headers;

  (* 4. Trigger activations. *)
  Kv.iter_prefix db Keys.trigger_prefix (fun _ payload ->
      (match Triggers.decode_activation payload with
      | a ->
          if a.active && not (Hashtbl.mem headers a.aoid) then
            bad "activation %d attached to dead object %a" a.tid Oid.pp a.aoid;
          (match Catalog.find db.catalog a.tcls with
          | None -> bad "activation %d: unknown declaring class %s" a.tid a.tcls
          | Some cls ->
              if Catalog.find_trigger db.catalog cls a.tname = None then
                bad "activation %d: class %s has no trigger %s" a.tid a.tcls a.tname)
      | exception _ -> bad "activation record does not decode");
      true);

  (* 5. Structural checks of the trees. *)
  (match Bptree.check db.kv_dir with Ok () -> () | Error e -> bad "directory tree: %s" e);
  (match Bptree.check db.idx with Ok () -> () | Error e -> bad "index tree: %s" e);

  match !problems with [] -> Ok () | ps -> Error (List.rev ps)

let run_exn db =
  match run db with
  | Ok () -> ()
  | Error ps -> failwith ("integrity check failed:\n  " ^ String.concat "\n  " ps)
