module Ast = Ode_lang.Ast
module Oid = Ode_model.Oid
module Value = Ode_model.Value
module Schema = Ode_model.Schema
module Catalog = Ode_model.Catalog
module Eval = Ode_model.Eval
module Bptree = Ode_index.Bptree
open Types

let class_ids db classes =
  List.filter_map
    (fun name -> Option.map (fun (c : Schema.cls) -> c.Schema.id) (Catalog.find db.catalog name))
    classes

(* Does the (live) object [oid] belong to one of the accepted clusters? *)
let accept_class ids (oid : Oid.t) = List.mem oid.cls ids

(* Ordered merge of MVCC chain keys into a streaming key scan. An object
   overwritten or deleted after the scanning snapshot was taken may have no
   directory or index entry left to stream from — its pre-image lives only
   in a version chain — so the chained keys under the scan's range are
   interleaved into the stream in key order. Every merged candidate is
   re-verified against the snapshot by [accept] (invisible ones, e.g.
   created-after-snapshot chains, drop out there); a chained key still
   present in the tree collapses onto the stream's copy. [chained] must be
   sorted (as {!Mvcc.keys_matching} returns), [iter] must stream in key
   order. *)
let merge_chained chained emit iter =
  match chained with
  | [] -> iter (fun key -> emit key; true)
  | _ ->
      let rest = ref chained in
      let drain_below key =
        let rec go () =
          match !rest with
          | ck :: tl when ck < key ->
              rest := tl;
              emit ck;
              go ()
          | ck :: tl when ck = key -> rest := tl
          | _ -> ()
        in
        go ()
      in
      iter (fun key ->
          drain_below key;
          emit key;
          true);
      List.iter emit !rest

(* Committed extent of one class, in creation order. Keys-only: the header
   payload is never needed here, and [accept]'s [Store.exists] re-verifies
   liveness per candidate, so the scan reads directory leaves only. Chained
   header keys are merged in so objects deleted after the snapshot still
   surface ([Mvcc.keys_matching] is a single atomic load when no chains
   exist — the no-concurrent-snapshot common case). *)
let committed_candidates db ?txn cls_id f =
  let prefix = Keys.header_prefix_class cls_id in
  let chained =
    match txn with
    | None -> []
    | Some _ -> Mvcc.keys_matching db.mvcc (fun k -> String.starts_with ~prefix k)
  in
  merge_chained chained
    (fun key -> f (Keys.oid_of_header_key key))
    (fun g -> Kv.iter_prefix_keys db ?txn prefix g)

(* Transaction-local additions: objects created (or touched — their state may
   newly match an indexed predicate) in the active transaction. *)
let txn_candidates txn ids f =
  match txn with
  | None -> ()
  | Some t ->
      List.iter (fun oid -> if accept_class ids oid then f oid) (List.rev t.created);
      Hashtbl.iter (fun oid () -> if accept_class ids oid then f oid) t.touched

(* Index entries are chain-recorded under their 'I'-prefixed logical key;
   the index tree stores them without the tag, so chained keys are stripped
   (order-preserving: they share the leading 'I') before merging. *)
let chained_index_keys db txn pred =
  match txn with
  | None -> []
  | Some _ ->
      List.map Keys.index_tree_key
        (Mvcc.keys_matching db.mvcc (fun k ->
             Keys.is_index_key k && pred (Keys.index_tree_key k)))

let index_candidates db ?txn (access : Planner.access) f =
  match access with
  | Planner.Full_scan -> invalid_arg "index_candidates: full scan"
  | Planner.Index_eq { idx_id; value; _ } ->
      let prefix = Keys.index_tree_key (Keys.index_value_prefix ~idx_id ~valkey:(Value.index_key value)) in
      let chained = chained_index_keys db txn (String.starts_with ~prefix) in
      merge_chained chained
        (fun key -> f (Keys.oid_of_index_key key))
        (fun g -> Bptree.iter_prefix db.idx prefix (fun key _ -> g key))
  | Planner.Index_range { idx_id; lo; hi; _ } ->
      let tree_prefix = Keys.index_tree_key (Keys.index_prefix ~idx_id) in
      let lo_key =
        match lo with
        | None -> Some tree_prefix
        | Some (v, incl) ->
            let vk = tree_prefix ^ Value.index_key v in
            if incl then Some vk
            else
              (* strictly greater: skip every entry with this exact value *)
              Ode_util.Key.succ_prefix vk
      in
      let hi_key =
        match hi with
        | None -> Ode_util.Key.succ_prefix tree_prefix
        | Some (v, incl) ->
            let vk = tree_prefix ^ Value.index_key v in
            if incl then Ode_util.Key.succ_prefix vk else Some vk
      in
      let lo_key = Option.value lo_key ~default:tree_prefix in
      let chained =
        chained_index_keys db txn (fun tk ->
            tk >= lo_key && match hi_key with None -> true | Some h -> tk < h)
      in
      merge_chained chained
        (fun key -> f (Keys.oid_of_index_key key))
        (fun g -> Bptree.iter_range db.idx ~lo:lo_key ?hi:hi_key (fun key _ -> g key))

(* [by x.f asc] over a single cluster with an index on [f] can stream in
   index order instead of materializing and sorting — but only when the
   transaction has no pending writes on that cluster (a dirty write set
   would have to be merge-sorted in; we fall back to sorting then), and the
   index carries no version chains for the snapshot (a post-snapshot
   reindex moved entries; the sort path re-evaluates keys under the
   snapshot, the stream would emit at the new position). *)
let index_order_plan db txn (plan : Planner.plan) by =
  match (by, plan.p_classes) with
  | Some (Ast.Field (Ast.Var v, f), order), [ only_cls ] when v = plan.p_var -> (
      let txn_dirty =
        match txn with
        | None -> false
        | Some t -> Hashtbl.length t.writes > 0
      in
      let unchained idx_id =
        txn = None
        || Mvcc.keys_matching db.mvcc
             (String.starts_with ~prefix:(Keys.index_prefix ~idx_id))
           = []
      in
      if txn_dirty then None
      else
        match (plan.p_access, Store.index_ids db ~cls:only_cls ~field:f) with
        | (Planner.Full_scan | Planner.Index_range _), None -> (
            (* the index may be declared on an ancestor *)
            let cls = Catalog.find_exn db.catalog only_cls in
            let rec pick i = function
              | [] -> None
              | (icls, fld) :: rest ->
                  if fld = f && Catalog.is_subclass db.catalog ~sub:only_cls ~super:icls then
                    Some i
                  else pick (i + 1) rest
            in
            match pick 0 (Catalog.indexes db.catalog) with
            | Some idx_id when unchained idx_id -> Some (idx_id, order, cls.Schema.id)
            | Some _ | None -> None)
        | (Planner.Full_scan | Planner.Index_range _), Some idx_id ->
            if unchained idx_id then
              let cls = Catalog.find_exn db.catalog only_cls in
              Some (idx_id, order, cls.Schema.id)
            else None
        | Planner.Index_eq _, _ -> None)
  | _ -> None

(* -- per-node profiling (EXPLAIN ANALYZE, paper §3.1 "query optimization") --

   The executor streams: candidates flow one at a time through access →
   filter → (order) → body, so a node's cost is not one contiguous interval.
   Attribution is mark-based instead: the profiler keeps the timestamp and
   Stats snapshot of the previous attribution point, and charging a node
   means "add (now - mark, stats - mark) to it and advance the mark". Every
   instant and every counter bump between two marks lands in exactly one
   node, so the per-node sums equal the query totals by construction. *)

type node_stats = {
  ns_kind : Planner.node_kind;
  ns_label : string;
  mutable ns_rows : int;
  mutable ns_ns : int;
  ns_stats : Ode_util.Stats.snapshot;
}

type profile = {
  pf_plan : string;
  pf_nodes : node_stats list;
  pf_rows : int;
  pf_total_ns : int;
  pf_stats : Ode_util.Stats.snapshot;
}

type prof_state = {
  mutable mark_ns : int;
  mutable mark_stats : Ode_util.Stats.snapshot; (* full mode only *)
  (* Full mode (explicit [profile]): time and every counter attributed
     exactly per node, at a clock read and a [Stats.snapshot] per
     candidate transition. Light mode (armed slow log, tracer) pays
     nothing per candidate: rows are counted at the call sites, and time
     and counters are taken once at the query boundaries. The per-
     candidate work is unaffordable on an always-armed path — counter-
     cell reads cost hundreds of ns each in a real scan (the candidates'
     own data traffic keeps evicting the cells), pricing the slow log at
     ~35% of a query, and even the clock mark alone is ~5%. *)
  pr_full : bool;
  pr_access : node_stats;
  pr_filter : node_stats option;
  pr_order : node_stats option;
  pr_output : node_stats;
  pr_start_ns : int;
  pr_start_stats : Ode_util.Stats.snapshot;
}

let attr p node =
  if p.pr_full then begin
    let t = Ode_util.Trace.now_ns () in
    node.ns_ns <- node.ns_ns + (t - p.mark_ns);
    let s = Ode_util.Stats.snapshot () in
    Ode_util.Stats.accum ~into:node.ns_stats s p.mark_stats;
    p.mark_stats <- s;
    p.mark_ns <- t
  end

let h_query = Ode_util.Histogram.create "query.execute"

let run_profiled db ?txn ?(env = []) ~var ~cls ?(deep = false) ?suchthat ?filter ?by
    ?(fixpoint = false) ?(full = false) ~profiled body =
  let txn = match txn with Some t -> Some t | None -> db.active in
  if fixpoint && by <> None then invalid_arg "query: fixpoint iteration cannot be ordered";
  let plan = Planner.plan db ?txn ~env ~var ~cls ~deep ~suchthat () in
  let ids = class_ids db plan.p_classes in
  let hooks = Runtime.hooks db txn in
  let iop = index_order_plan db txn plan by in
  let prof =
    if profiled || Ode_util.Trace.enabled () then begin
      let node (kind, label) =
        { ns_kind = kind; ns_label = label; ns_rows = 0; ns_ns = 0;
          ns_stats = Ode_util.Stats.zero () }
      in
      let base = List.map node (Planner.nodes ?suchthat plan) in
      let norder =
        match by with
        | None -> None
        | Some (e, ord) ->
            let dir = match ord with Ast.Asc -> "" | Ast.Desc -> " desc" in
            let how = if iop <> None then " (streamed in index order)" else " (sort)" in
            Some (node (Planner.Order, "order by " ^ Ode_lang.Pp.expr_to_string e ^ dir ^ how))
      in
      let t0 = Ode_util.Trace.now_ns () in
      let s0 = Ode_util.Stats.snapshot () in
      Some
        { mark_ns = t0; mark_stats = s0; pr_full = full;
          pr_access = List.hd base;
          pr_filter = List.nth_opt base 1; pr_order = norder;
          pr_output = node (Planner.Output, "output (loop body)");
          pr_start_ns = t0; pr_start_stats = s0 }
    end
    else None
  in
  (* The loop body, with output-node attribution around it. *)
  let obody =
    match prof with
    | None -> body
    | Some p ->
        fun oid -> (
          p.pr_output.ns_rows <- p.pr_output.ns_rows + 1;
          match body oid with
          | () -> attr p p.pr_output
          | exception e ->
              attr p p.pr_output;
              raise e)
  in
  let accept oid =
    Ode_util.Stats.incr_objects_scanned ();
    let live = accept_class ids oid && Store.exists db txn oid in
    (match prof with
    | Some p ->
        p.pr_access.ns_rows <- p.pr_access.ns_rows + 1;
        attr p p.pr_access
    | None -> ());
    if not live then false
    else begin
      let ok =
        (match suchthat with
        | None -> true
        | Some e -> (
            let vars = (var, Value.Ref oid) :: env in
            match Eval.eval hooks ~vars ~this:None e with
            | v -> ( try Eval.truthy v with Eval.Error _ -> false)
            | exception Eval.Error _ -> false))
        && match filter with None -> true | Some f -> f oid
      in
      (match prof with
      | Some p -> (
          match p.pr_filter with
          | Some nf ->
              if ok then nf.ns_rows <- nf.ns_rows + 1;
              attr p nf
          | None -> attr p p.pr_access)
      | None -> ());
      ok
    end
  in
  let use_index = match plan.p_access with Planner.Full_scan -> false | _ -> not fixpoint in
  let emit_in_order f =
    if use_index then begin
      (* Index entries reflect committed state only; candidates are always
         re-verified against the transaction's view, and txn-local objects
         are appended as extra candidates. *)
      let seen = Hashtbl.create 64 in
      let once oid =
        if not (Hashtbl.mem seen oid) then begin
          Hashtbl.replace seen oid ();
          if accept oid then f oid
        end
      in
      index_candidates db ?txn plan.p_access once;
      txn_candidates txn ids once
    end
    else begin
      List.iter (fun cid -> committed_candidates db ?txn cid (fun oid -> if accept oid then f oid)) ids;
      match txn with
      | None -> ()
      | Some t ->
          List.iter
            (fun oid -> if accept_class ids oid && accept oid then f oid)
            (List.rev t.created)
    end
  in
  (* Charge order-node work (key evaluation / sort) when profiling. *)
  let attr_order () =
    match prof with
    | Some ({ pr_order = Some no; _ } as p) -> attr p no
    | _ -> ()
  in
  (match by with
  | Some (key_expr, order) -> (
      match iop with
      | Some (idx_id, ord, cls_id) ->
          (* Stream the index in key order; entries for other classes of a
             shared ancestor index are filtered by the oid's class id. *)
          let tree_prefix = Keys.index_tree_key (Keys.index_prefix ~idx_id) in
          let step f key _ =
            let oid = Keys.oid_of_index_key key in
            if oid.Oid.cls = cls_id && accept oid then f oid;
            true
          in
          (match ord with
          | Ast.Asc -> Bptree.iter_prefix db.idx tree_prefix (step obody)
          | Ast.Desc -> Bptree.iter_prefix_rev db.idx tree_prefix (step obody))
      | None ->
          let rows = ref [] in
          emit_in_order (fun oid ->
              let vars = (var, Value.Ref oid) :: env in
              let k =
                match Eval.eval hooks ~vars ~this:None key_expr with
                | v -> v
                | exception Eval.Error _ -> Value.Null
              in
              rows := (k, oid) :: !rows;
              (match prof with
              | Some ({ pr_order = Some no; _ } as p) ->
                  no.ns_rows <- no.ns_rows + 1;
                  attr p no
              | _ -> ()));
          let cmp (a, _) (b, _) =
            match order with Ast.Asc -> Value.compare a b | Ast.Desc -> Value.compare b a
          in
          let sorted = List.stable_sort cmp (List.rev !rows) in
          attr_order ();
          List.iter (fun (_, oid) -> obody oid) sorted)
  | None ->
      if not fixpoint then emit_in_order obody
      else begin
        (* Fixpoint semantics: the body may pnew into the cluster; newly
           created objects are fed back into the iteration until quiescence. *)
        let t =
          match txn with
          | Some t -> t
          | None -> invalid_arg "query: fixpoint iteration requires a transaction"
        in
        let processed = Hashtbl.create 64 in
        let process oid =
          if not (Hashtbl.mem processed oid) then begin
            Hashtbl.replace processed oid ();
            if accept oid then obody oid
          end
        in
        List.iter (fun cid -> committed_candidates db ?txn cid process) ids;
        let rec drain () =
          let fresh =
            List.filter
              (fun oid -> accept_class ids oid && not (Hashtbl.mem processed oid))
              (List.rev t.created)
          in
          if fresh <> [] then begin
            List.iter process fresh;
            drain ()
          end
        in
        drain ()
      end);
  match prof with
  | None -> None
  | Some p ->
      (* Final tail (cursor wind-down, loop epilogue) goes to the access
         node using the same instant that defines the totals, so the
         per-node sums equal the totals exactly. In light mode [attr] is
         a no-op and [mark_ns] never moved, so take the end instant here. *)
      attr p p.pr_access;
      if not p.pr_full then p.mark_ns <- Ode_util.Trace.now_ns ();
      let nodes =
        (p.pr_access :: Option.to_list p.pr_filter)
        @ Option.to_list p.pr_order
        @ [ p.pr_output ]
      in
      let pf =
        {
          pf_plan = Planner.explain plan;
          pf_nodes = nodes;
          pf_rows = p.pr_output.ns_rows;
          pf_total_ns = p.mark_ns - p.pr_start_ns;
          (* Light mode never advances [mark_stats]; one full snapshot at
             the end still gives the whole-query totals. *)
          pf_stats =
            (if p.pr_full then Ode_util.Stats.diff p.mark_stats p.pr_start_stats
             else Ode_util.Stats.diff (Ode_util.Stats.snapshot ()) p.pr_start_stats);
        }
      in
      if Ode_util.Trace.enabled () then begin
        Ode_util.Trace.emit ~cat:"query"
          ~args:[ ("cls", cls); ("plan", pf.pf_plan); ("rows", string_of_int pf.pf_rows) ]
          ~start_ns:p.pr_start_ns ~dur_ns:pf.pf_total_ns "query.execute";
        (* One span per plan node, full mode only — light profiles carry
           no per-node times, and a lane of zero-width spans is noise.
           Node times are aggregates over an interleaved streaming
           execution, so the spans are laid out sequentially inside the
           parent rather than at their (many) actual intervals. *)
        if p.pr_full then begin
          let off = ref p.pr_start_ns in
          List.iter
            (fun n ->
              Ode_util.Trace.emit ~cat:"query" ~depth:1
                ~args:[ ("rows", string_of_int n.ns_rows) ]
                ~start_ns:!off ~dur_ns:n.ns_ns n.ns_label;
              off := !off + n.ns_ns)
            nodes
        end
      end;
      Some pf

(* When the slow-query log is armed, every query runs light-profiled
   (rows per node, whole-query time and counter totals) and the
   resulting profile is stashed domain-locally: the session layer, which
   times the whole request against the threshold, collects it from here
   if (and only if) the request turns out slow. Domain-local because a
   request executes entirely on one domain — concurrent readers each see
   their own last profile. *)
let last_profile_key = Domain.DLS.new_key (fun () : profile option -> None)

let take_last_profile () =
  let pf = Domain.DLS.get last_profile_key in
  if pf <> None then Domain.DLS.set last_profile_key None;
  pf

let run db ?txn ?env ~var ~cls ?deep ?suchthat ?filter ?by ?fixpoint body =
  Ode_util.Histogram.time h_query (fun () ->
      let slow = Ode_util.Slowlog.armed () in
      match
        run_profiled db ?txn ?env ~var ~cls ?deep ?suchthat ?filter ?by ?fixpoint ~profiled:slow
          body
      with
      | Some pf when slow -> Domain.DLS.set last_profile_key (Some pf)
      | _ -> ())

let profile db ?txn ?env ~var ~cls ?deep ?suchthat ?by ?(body = fun _ -> ()) () =
  Ode_util.Histogram.time h_query (fun () ->
      match
        run_profiled db ?txn ?env ~var ~cls ?deep ?suchthat ?by ~full:true ~profiled:true body
      with
      | Some pf -> pf
      | None -> assert false)

let profile_to_string pf =
  let open Ode_util in
  let num = string_of_int in
  let header = [ "node"; "rows"; "time"; "pages"; "probes"; "scanned"; "fetched"; "cursor" ] in
  let counters s =
    [
      num (Stats.pages_read s); num (Stats.index_probes s); num (Stats.objects_scanned s);
      num (Stats.objects_fetched s); num (Stats.cursor_pages_read s);
    ]
  in
  let rows =
    header
    :: List.map
         (fun n -> [ n.ns_label; num n.ns_rows; Histogram.format_ns n.ns_ns ] @ counters n.ns_stats)
         pf.pf_nodes
    @ [ [ "total"; num pf.pf_rows; Histogram.format_ns pf.pf_total_ns ] @ counters pf.pf_stats ]
  in
  let widths =
    List.fold_left
      (fun ws row -> List.map2 (fun w c -> max w (String.length c)) ws row)
      (List.map (fun _ -> 0) header)
      rows
  in
  let render row =
    String.concat "  "
      (List.mapi
         (fun i (w, c) -> if i = 0 then Printf.sprintf "%-*s" w c else Printf.sprintf "%*s" w c)
         (List.combine widths row))
  in
  "plan: " ^ pf.pf_plan ^ "\n" ^ String.concat "\n" (List.map render rows)

(* The same attribution as [profile_to_string], rendered as one JSON
   object for the slow-query log. *)
let profile_to_json pf =
  let open Ode_util in
  let esc = Metrics.json_escape in
  let node n =
    Printf.sprintf
      "{\"label\":\"%s\",\"rows\":%d,\"ns\":%d,\"pages\":%d,\"probes\":%d,\"scanned\":%d,\"fetched\":%d,\"cursor\":%d}"
      (esc n.ns_label) n.ns_rows n.ns_ns (Stats.pages_read n.ns_stats)
      (Stats.index_probes n.ns_stats)
      (Stats.objects_scanned n.ns_stats)
      (Stats.objects_fetched n.ns_stats)
      (Stats.cursor_pages_read n.ns_stats)
  in
  (* Whole-query counter totals: under a light profile (armed slow log)
     the per-node counters are all zero, so the totals object is where
     the log entry's physical-work numbers live. *)
  let totals =
    Printf.sprintf "{\"pages\":%d,\"probes\":%d,\"scanned\":%d,\"fetched\":%d,\"cursor\":%d}"
      (Stats.pages_read pf.pf_stats)
      (Stats.index_probes pf.pf_stats)
      (Stats.objects_scanned pf.pf_stats)
      (Stats.objects_fetched pf.pf_stats)
      (Stats.cursor_pages_read pf.pf_stats)
  in
  Printf.sprintf "{\"plan\":\"%s\",\"rows\":%d,\"total_ns\":%d,\"totals\":%s,\"nodes\":[%s]}"
    (esc pf.pf_plan) pf.pf_rows pf.pf_total_ns totals
    (String.concat "," (List.map node pf.pf_nodes))

let fold db ?txn ?env ~var ~cls ?deep ?suchthat ?filter ?by ~init f =
  let acc = ref init in
  run db ?txn ?env ~var ~cls ?deep ?suchthat ?filter ?by (fun oid -> acc := f !acc oid);
  !acc

let to_list db ?txn ?env ~var ~cls ?deep ?suchthat ?filter ?by () =
  List.rev (fold db ?txn ?env ~var ~cls ?deep ?suchthat ?filter ?by ~init:[] (fun acc o -> o :: acc))

let count db ?txn ?deep ?suchthat ~var ~cls () =
  fold db ?txn ~var ~cls ?deep ?suchthat ~init:0 (fun n _ -> n + 1)

(* Early exit through the whole scan stack: the exception unwinds the
   streaming cursor in [Kv.iter_prefix] (or the index walk), so no further
   pages are read after the first match. *)
let exists db ?txn ?env ?deep ?suchthat ~var ~cls () =
  let exception Found in
  match run db ?txn ?env ~var ~cls ?deep ?suchthat (fun _ -> raise Found) with
  | () -> false
  | exception Found -> true

(* -- two-extent joins (collection-join fusion) ------------------------------ *)

(* Execute a planned two-extent join. Pair emission is always outer-major
   (outer rows in extent order); within one outer row the inner order may
   differ between strategies, which [forall] nesting does not specify.
   Every emitted pair re-checks the full inner predicate with both
   variables bound, so a fused strategy can only skip non-matching work,
   never change results. *)
let run_join db ?txn ?(env = []) ~outer:(ovar, ocls, odeep) ~inner:(ivar, icls, ideep)
    ?outer_suchthat ?inner_suchthat body =
  let txn = match txn with Some t -> Some t | None -> db.active in
  let jp =
    Planner.plan_join db ?txn ~env ~outer:(ovar, ocls, odeep) ~inner:(ivar, icls, ideep)
      ?outer_suchthat ?inner_suchthat ()
  in
  let hooks = Runtime.hooks db txn in
  let inner_ids = class_ids db (if ideep then Catalog.subclasses db.catalog icls else [ icls ]) in
  let live i = accept_class inner_ids i && Store.exists db txn i in
  let check_pair o i =
    match inner_suchthat with
    | None -> true
    | Some e -> (
        let vars = (ivar, Value.Ref i) :: (ovar, Value.Ref o) :: env in
        match Eval.eval hooks ~vars ~this:None e with
        | v -> ( try Eval.truthy v with Eval.Error _ -> false)
        | exception Eval.Error _ -> false)
  in
  let field_of var oid f =
    match Eval.eval hooks ~vars:((var, Value.Ref oid) :: env) ~this:None (Ast.Field (Ast.Var var, f)) with
    | v -> v
    | exception Eval.Error _ -> Value.Null
  in
  let run_outer f =
    run db ?txn ~env ~var:ovar ~cls:ocls ~deep:odeep ?suchthat:outer_suchthat f
  in
  match jp.j_strategy with
  | Planner.Nested_loop ->
      Ode_util.Stats.incr_planner_nested_joins ();
      run_outer (fun o ->
          run db ?txn
            ~env:((ovar, Value.Ref o) :: env)
            ~var:ivar ~cls:icls ~deep:ideep ?suchthat:inner_suchthat
            (fun i -> body o i))
  | Planner.Fused_deref f ->
      Ode_util.Stats.incr_planner_fused_joins ();
      run_outer (fun o ->
          match field_of ovar o f with
          | Value.Ref i when live i && check_pair o i -> body o i
          | _ -> ())
  | Planner.Fused_member f ->
      Ode_util.Stats.incr_planner_fused_joins ();
      run_outer (fun o ->
          match field_of ovar o f with
          | Value.VSet vs | Value.VList vs ->
              (* A list may hold the same ref twice; the nested loop would
                 still emit the pair once (the inner extent is the driver
                 there), so deduplicate per outer row. *)
              let seen = Hashtbl.create 8 in
              List.iter
                (fun v ->
                  match v with
                  | Value.Ref i when not (Hashtbl.mem seen i) ->
                      Hashtbl.replace seen i ();
                      if live i && check_pair o i then body o i
                  | _ -> ())
                vs
          | _ -> ())
  | Planner.Hash_join { outer_field; inner_field } ->
      Ode_util.Stats.incr_planner_hash_joins ();
      (* One streamed pass over the inner extent (MVCC chain merging and
         txn-local candidates come with [run] for free), keyed by the
         order-preserving byte encoding of the join field. *)
      let tbl : (string, Oid.t) Hashtbl.t = Hashtbl.create 256 in
      run db ?txn ~env ~var:ivar ~cls:icls ~deep:ideep ?suchthat:jp.j_inner_only (fun i ->
          match field_of ivar i inner_field with
          | v when Planner.indexable_value v -> Hashtbl.add tbl (Value.index_key v) i
          | _ -> ());
      run_outer (fun o ->
          match field_of ovar o outer_field with
          | v when Planner.indexable_value v ->
              List.iter
                (fun i -> if live i && check_pair o i then body o i)
                (* find_all returns latest-first; restore build order. *)
                (List.rev (Hashtbl.find_all tbl (Value.index_key v)))
          | _ -> ())

let explain_join db ?txn ?env ~outer ~inner ?outer_suchthat ?inner_suchthat () =
  Planner.explain_join
    (Planner.plan_join db ?txn ?env ~outer ~inner ?outer_suchthat ?inner_suchthat ())

let join2 db ?txn ~outer:(ovar, ocls) ~inner:(ivar, icls) ?(deep = false) ?suchthat body =
  run_join db ?txn ~outer:(ovar, ocls, deep) ~inner:(ivar, icls, deep) ?inner_suchthat:suchthat
    body

let explain db ?env ~var ~cls ?(deep = false) ?suchthat () =
  Planner.explain (Planner.plan db ?env ~var ~cls ~deep ~suchthat ())

(* -- aggregates ------------------------------------------------------------- *)

(* The paper's §3.1 loops ("average income of all persons") packaged as
   combinators: evaluate [expr] for every qualifying object and combine.
   Null results of [expr] are skipped, like SQL aggregates skip NULL. *)

let eval_key db txn hooks env var key_expr oid =
  ignore db;
  ignore txn;
  let vars = (var, Value.Ref oid) :: env in
  match Eval.eval hooks ~vars ~this:None key_expr with
  | v -> v
  | exception Eval.Error _ -> Value.Null

let aggregate db ?txn ?(env = []) ~var ~cls ?deep ?suchthat ~expr ~init ~combine () =
  let txn = match txn with Some t -> Some t | None -> db.active in
  let hooks = Runtime.hooks db txn in
  let acc = ref init in
  run db ?txn ~env ~var ~cls ?deep ?suchthat (fun oid ->
      match eval_key db txn hooks env var expr oid with
      | Value.Null -> ()
      | v -> acc := combine !acc v);
  !acc

let as_float = function
  | Value.Int n -> float_of_int n
  | Value.Float f -> f
  | v -> raise (Eval.Error (Fmt.str "aggregate over non-numeric value %a" Value.pp v))

let sum db ?txn ?env ~var ~cls ?deep ?suchthat ~expr () =
  aggregate db ?txn ?env ~var ~cls ?deep ?suchthat ~expr ~init:0.0
    ~combine:(fun acc v -> acc +. as_float v)
    ()

let average db ?txn ?env ~var ~cls ?deep ?suchthat ~expr () =
  let total, n =
    aggregate db ?txn ?env ~var ~cls ?deep ?suchthat ~expr ~init:(0.0, 0)
      ~combine:(fun (t, n) v -> (t +. as_float v, n + 1))
      ()
  in
  if n = 0 then None else Some (total /. float_of_int n)

let minimum db ?txn ?env ~var ~cls ?deep ?suchthat ~expr () =
  aggregate db ?txn ?env ~var ~cls ?deep ?suchthat ~expr ~init:None
    ~combine:(fun acc v ->
      match acc with Some m when Value.compare m v <= 0 -> acc | _ -> Some v)
    ()

let maximum db ?txn ?env ~var ~cls ?deep ?suchthat ~expr () =
  aggregate db ?txn ?env ~var ~cls ?deep ?suchthat ~expr ~init:None
    ~combine:(fun acc v ->
      match acc with Some m when Value.compare m v >= 0 -> acc | _ -> Some v)
    ()

(* [group_count db ~expr ...] — how many objects per value of [expr]; the
   building block of the paper's per-class reports. *)
let group_count db ?txn ?env ~var ~cls ?deep ?suchthat ~expr () =
  let groups : (Value.t, int) Hashtbl.t = Hashtbl.create 16 in
  let (_ : int) =
    aggregate db ?txn ?env ~var ~cls ?deep ?suchthat ~expr ~init:0
      ~combine:(fun n v ->
        Hashtbl.replace groups v (1 + Option.value (Hashtbl.find_opt groups v) ~default:0);
        n + 1)
      ()
  in
  List.sort
    (fun (a, _) (b, _) -> Value.compare a b)
    (Hashtbl.fold (fun v n acc -> (v, n) :: acc) groups [])
