(** The committed key-value store: a B+tree directory mapping logical keys
    (see {!Keys}) to heap record ids, with payloads in the heap.

    This is the *committed* state only — transactions overlay it with their
    write set (see {!Store.read}). Keys are ordered, so class extents and
    index ranges scan in key order. All operations are idempotent with
    respect to crash-recovery replay: {!put} and {!delete} tolerate a
    directory entry pointing at a dead or torn heap record, and every heap
    record carries its owning key, so a stale post-crash directory entry
    that aliases a reused (page, slot) address can never redirect an
    operation onto another key's record. *)

open Types

val encode_rid : Ode_storage.Heap.rid -> string
val decode_rid : string -> Ode_storage.Heap.rid
(** The directory's 6-byte rid value encoding (recovery and verification). *)

val decode_record : string -> string -> string option
(** [decode_record key raw] extracts the payload from a raw heap record if
    it is owned by [key]; [None] means the record belongs to another key
    (verification and stale-alias detection). *)

val decode_record_view : string -> string -> string option
(** Same contract as {!decode_record} (of which it is the implementation):
    the ownership check runs by offset arithmetic against the raw record, no
    intermediate key copy, and a malformed record yields [None] instead of
    raising. *)

val get : db -> string -> string option
val mem : db -> string -> bool
val put : db -> string -> string -> unit
val delete : db -> string -> unit

val iter_prefix : db -> ?txn:txn -> string -> (string -> string -> bool) -> unit
(** [iter_prefix db p f] visits entries whose key starts with [p] in key
    order; [f] returns [false] to stop. Streams through a B+tree cursor
    (O(1) memory, early exit stops page reads) unless the scanning
    transaction has pending writes under [p], in which case the matching
    directory entries are collected before any payload is fetched so the
    callback may safely interleave further writes against the same extent.
    [?txn] names the scanning transaction; omitted, [db.active] is
    consulted — fine on the writer domain, a race anywhere else, so reader
    domains must pass their own transaction. *)

val iter_prefix_keys : db -> ?txn:txn -> string -> (string -> bool) -> unit
(** Like {!iter_prefix} but yields keys only and never reads the heap: the
    scan's working set is the directory tree, not the records, so large
    extents don't evict record pages from the buffer pool. A yielded key is
    a candidate, not proof of a live record — callers must re-verify (e.g.
    with {!get}) before trusting it. Same pending-write fallback as
    {!iter_prefix}. *)
