(** Decoded-object cache over logical KV keys.

    Caches decoded headers and field lists of *committed* objects so the
    query read path ({!Store.get_header}, {!Store.get_fields_v}) skips the
    B+tree descent, heap fetch and decode on a warm hit. Sized by the
    [?object_cache] option of {!Database.open_}; capacity 0 disables it. *)

val enabled : Types.db -> bool

val find : Types.db -> string -> Types.cached option
(** Lookup by logical key; bumps the hit/miss counters when enabled. *)

val add : Types.db -> string -> Types.cached -> unit
(** Insert (evicting LRU entries beyond capacity). No-op when disabled. *)

val invalidate : Types.db -> string -> unit
(** Drop one key because a committed write touched it. Counts an
    invalidation only when the key was actually resident. *)

val clear : Types.db -> unit
(** Wholesale wipe, used at recovery/reopen. *)

val resident : Types.db -> int
(** Decoded objects currently cached (monitoring gauge). *)
