(* Evaluation hooks binding the expression evaluator to the database: field
   access through the active transaction, dynamic class tests, version
   navigation builtins and method dispatch on the receiver's runtime class
   (most-derived definition wins, like C++ virtual functions). *)

module Oid = Ode_model.Oid
module Value = Ode_model.Value
module Schema = Ode_model.Schema
module Catalog = Ode_model.Catalog
module Eval = Ode_model.Eval
open Types

let err fmt = Format.kasprintf (fun s -> raise (Eval.Error s)) fmt

let version_builtin db txn name (args : Value.t list) : Value.t option =
  let header oid =
    match Store.get_header db txn oid with
    | Some h -> h
    | None -> err "no such object %a" Oid.pp oid
  in
  (* Versions ordered by creation; navigation follows that order (linear
     versioning, paper §4). *)
  let sorted oid = List.sort Int.compare (header oid).Store.hversions in
  match (name, args) with
  | "vref", [ Ref oid; Int k ] ->
      if List.mem k (header oid).Store.hversions then Some (Value.Vref { oid; ver = k })
      else Some Value.Null
  | "vnum", [ Vref vr ] -> Some (Value.Int vr.ver)
  | "vnum", [ Ref oid ] -> Some (Value.Int (header oid).Store.hcurrent)
  | "nversions", [ Ref oid ] -> Some (Value.Int (List.length (header oid).Store.hversions))
  | "current", [ Vref vr ] -> Some (Value.Ref vr.oid)
  | "current", [ Ref oid ] -> Some (Value.Ref oid)
  | "vprev", [ v ] -> (
      let oid, ver =
        match v with
        | Value.Vref vr -> (vr.oid, vr.ver)
        | Value.Ref oid -> (oid, (header oid).Store.hcurrent)
        | v -> err "vprev: expected an object, got %a" Value.pp v
      in
      match List.rev (List.filter (fun x -> x < ver) (sorted oid)) with
      | prev :: _ -> Some (Value.Vref { oid; ver = prev })
      | [] -> Some Value.Null)
  | "vnext", [ Vref vr ] -> (
      match List.filter (fun x -> x > vr.ver) (sorted vr.oid) with
      | next :: _ -> Some (Value.Vref { oid = vr.oid; ver = next })
      | [] -> Some Value.Null)
  | "now", [] -> Some (Value.Int db.meta.clock)
  | "getroot", [ Str name ] -> (
      match Store.read db txn (Keys.root name) with
      | Some s -> Some (Value.decode (Ode_util.Codec.cursor s))
      | None -> Some Value.Null)
  | ("vref" | "vnum" | "nversions" | "current" | "vprev" | "vnext" | "now" | "getroot"), _ ->
      err "builtin %s: wrong arguments" name
  | _ -> None

let rec hooks db txn : Eval.hooks =
  {
    get_field = (fun oid f -> Store.get_field db txn oid f);
    get_field_v = (fun vr f -> Store.get_field_v db txn vr f);
    class_of =
      (fun oid ->
        if Store.exists db txn oid then
          Option.map (fun (c : Schema.cls) -> c.Schema.name) (Store.class_of db oid)
        else None);
    is_subclass = (fun ~sub ~super -> Catalog.is_subclass db.catalog ~sub ~super);
    call_method = (fun recv name args -> call_method db txn recv name args);
    builtin = (fun name args -> version_builtin db txn name args);
  }

and call_method db txn (recv : Value.t) name args : Value.t =
  let oid =
    match recv with
    | Ref oid -> oid
    | Vref vr -> vr.Oid.oid
    | v -> err "cannot call method %s on %a" name Value.pp v
  in
  let cls =
    match Store.class_of db oid with
    | Some c -> c
    | None -> err "object %a has unknown class" Oid.pp oid
  in
  match Catalog.find_method db.catalog cls name with
  | None -> err "class %s has no method %s" cls.Schema.name name
  | Some m ->
      if List.length args <> List.length m.mparams then
        err "method %s.%s expects %d arguments, got %d" cls.Schema.name name
          (List.length m.mparams) (List.length args);
      let vars = List.map2 (fun (p : Schema.field) v -> (p.fname, v)) m.mparams args in
      Eval.eval (hooks db txn) ~vars ~this:(Some recv) m.mbody

let eval db txn ?(vars = []) ?this e = Eval.eval (hooks db txn) ~vars ~this e
