module Ast = Ode_lang.Ast
module Oid = Ode_model.Oid
module Value = Ode_model.Value
module Schema = Ode_model.Schema
module Catalog = Ode_model.Catalog
module Typecheck = Ode_model.Typecheck
module Disk = Ode_storage.Disk
module Buffer_pool = Ode_storage.Buffer_pool
module Heap = Ode_storage.Heap
module Wal = Ode_storage.Wal
module Bptree = Ode_index.Bptree
open Types

type t = db

exception Schema_error = Catalog.Schema_error

let log = Logs.Src.create "ode.database" ~doc:"ODE database engine"

module Log = (val Logs.src_log log : Logs.LOG)

(* -- lifecycle --------------------------------------------------------------- *)

let make_db ~dbdir ~kv_disk ~dir_disk ~idx_disk ~wal ~pool_pages ~wal_checkpoint_bytes
    ~object_cache ~durability =
  let pool d = Buffer_pool.create ~capacity:pool_pages d in
  let db =
    {
      dbdir;
      kv_heap = Heap.attach (pool kv_disk);
      kv_dir = Bptree.attach (pool dir_disk);
      idx = Bptree.attach (pool idx_disk);
      wal;
      catalog = Catalog.create ();
      meta = { next_tid = 0; clock = 0 };
      stats = Ostats.fresh ();
      next_xid = 1;
      active = None;
      wtxns = Hashtbl.create 8;
      mvcc = Mvcc.create ();
      latch = Ode_util.Rwlock.create ();
      in_excl = false;
      activations = Hashtbl.create 64;
      by_oid = Hashtbl.create 64;
      action_queue = Queue.create ();
      draining = false;
      wal_auto_checkpoint = wal_checkpoint_bytes;
      durability;
      read_only = false;
      ocache = Ode_util.Slru.create (max 0 object_cache);
      closed = false;
      printer = print_string;
    }
  in
  (* Write-ahead under deferred durability: a prepared-but-unacked commit's
     effects live in dirty pages; before any of those pages can be written
     back (eviction, flush), the WAL batch covering them must be on disk. *)
  let force_log () = Txn.ack db in
  Buffer_pool.set_pre_write (Heap.pool db.kv_heap) force_log;
  Buffer_pool.set_pre_write (Bptree.pool db.kv_dir) force_log;
  Buffer_pool.set_pre_write (Bptree.pool db.idx) force_log;
  db

let h_recovery = Ode_util.Histogram.create "recovery"
let h_trigger_fire = Ode_util.Histogram.create "trigger.fire"

let recover db =
  Ode_util.Histogram.time h_recovery @@ fun () ->
  Ode_util.Trace.with_span ~cat:"recovery" "recovery" @@ fun () ->
  (* Wholesale cache invalidation: nothing decoded before the crash may
     survive into the replayed store. ([Kv.put]/[Kv.delete] invalidate per
     key during replay too; this is the belt to that suspenders.) *)
  Ocache.clear db;
  (* Pass 1: which transactions committed. Pass 2: apply their operations in
     log order (idempotent logical redo). *)
  let committed = Hashtbl.create 16 in
  Wal.replay db.wal (function
    | Wal.Commit (xid, _, _) -> Hashtbl.replace committed xid ()
    | _ -> ());
  let applied = ref 0 in
  Wal.replay db.wal (function
    | Wal.Put (xid, key, payload) when Hashtbl.mem committed xid ->
        Store.apply_op db key (Put payload);
        Ode_util.Stats.incr_recovery_replayed ();
        incr applied
    | Wal.Delete (xid, key) when Hashtbl.mem committed xid ->
        Store.apply_op db key Del;
        Ode_util.Stats.incr_recovery_replayed ();
        incr applied
    | _ -> ());
  if !applied > 0 then Log.info (fun m -> m "recovery: replayed %d operations" !applied);
  (* A crash between the heap flush and the directory flush can persist heap
     records whose directory entry never reached disk; reclaim them so the
     space is not leaked and Verify's dir<->heap cross-check holds. *)
  let live = Hashtbl.create 256 in
  Bptree.iter_range db.kv_dir (fun _ rid_s ->
      Hashtbl.replace live rid_s ();
      true);
  let swept =
    Heap.sweep_orphans db.kv_heap ~live:(fun rid -> Hashtbl.mem live (Kv.encode_rid rid))
  in
  if swept > 0 then begin
    Ode_util.Stats.add_orphans_reclaimed swept;
    Log.info (fun m -> m "recovery: reclaimed %d orphan heap records" swept)
  end;
  Txn.checkpoint db

let load_state db =
  (match Kv.get db Keys.catalog with
  | Some s -> db.catalog <- Catalog.decode s
  | None -> ());
  (match Kv.get db Keys.meta with
  | Some s -> db.meta <- Txn.decode_meta s
  | None -> ());
  (* Planner statistics: recovery replay may already have installed a
     newer snapshot (and tail adjustments) through [Store.apply_op]; only
     fall back to the checkpointed copy when it hasn't. *)
  if not db.stats.st_analyzed then
    (match Kv.get db Keys.stats with
    | Some s -> ( try Ostats.install db s with Ode_util.Codec.Corrupt _ -> ())
    | None -> ());
  Triggers.load_all db

let close_fds db =
  Wal.close db.wal;
  Disk.close (Buffer_pool.disk (Heap.pool db.kv_heap));
  Disk.close (Buffer_pool.disk (Bptree.pool db.kv_dir));
  Disk.close (Buffer_pool.disk (Bptree.pool db.idx))

let default_object_cache = 4096

let open_ ?(pool_pages = 512) ?(wal_checkpoint_bytes = 8 * 1024 * 1024)
    ?(object_cache = default_object_cache) ?(durability = Full) dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let file name = Filename.concat dir name in
  let db =
    make_db ~dbdir:(Some dir)
      ~kv_disk:(Disk.open_file (file "objects.heap"))
      ~dir_disk:(Disk.open_file (file "directory.bpt"))
      ~idx_disk:(Disk.open_file (file "indexes.bpt"))
      ~wal:(Wal.open_file (file "wal.log"))
      ~pool_pages ~wal_checkpoint_bytes ~object_cache ~durability
  in
  (match
     recover db;
     load_state db
   with
  | () -> ()
  | exception e ->
      (* Recovery can fail (corrupt file, injected crash): don't leak the
         four file descriptors opened above. *)
      (try close_fds db with _ -> ());
      db.closed <- true;
      raise e);
  db

let open_in_memory ?(pool_pages = 4096) ?(object_cache = default_object_cache)
    ?(durability = Full) () =
  let db =
    make_db ~dbdir:None ~kv_disk:(Disk.in_memory ()) ~dir_disk:(Disk.in_memory ())
      ~idx_disk:(Disk.in_memory ()) ~wal:(Wal.in_memory ()) ~pool_pages
      ~wal_checkpoint_bytes:(64 * 1024 * 1024) ~object_cache ~durability
  in
  load_state db;
  db

let checkpoint = Txn.checkpoint

let close db =
  if not db.closed then begin
    List.iter (fun t -> try Txn.abort t with _ -> ()) (Txn.open_writers db);
    Txn.checkpoint db;
    close_fds db;
    db.closed <- true
  end

let crash db =
  if not db.closed then begin
    close_fds db;
    db.closed <- true
  end

(* -- trigger action drain ------------------------------------------------------ *)

let max_cascade = 10_000

let with_txn_no_drain db f =
  let txn = Txn.begin_ db in
  match f txn with
  | v ->
      let firings = Txn.commit txn in
      List.iter (fun fr -> Queue.add fr db.action_queue) firings;
      v
  | exception e ->
      if txn.tstate = `Active then Txn.abort txn;
      raise e

let run_firing db (f : firing) =
  let a = f.f_act in
  match Triggers.find_decl db a.aoid a.tname with
  | exception Triggers.Trigger_error _ -> () (* object's class vanished: drop *)
  | g, _ ->
      let stmts = match f.f_kind with Fired -> g.gaction | Timed_out -> g.gtimeout in
      if stmts <> [] then begin
        let run txn =
          let env = Interp.env ~print:db.printer ~this:(Value.Ref a.aoid) () in
          List.iter2
            (fun (p : Schema.field) v -> Interp.define_var env p.fname v)
            g.gparams a.targs;
          Interp.exec_stmts txn env stmts
        in
        let run txn =
          Ode_util.Histogram.time h_trigger_fire (fun () ->
              Ode_util.Trace.with_span ~cat:"trigger"
                ~args:[ ("trigger", a.tname) ]
                "trigger.action" (fun () -> run txn))
        in
        match with_txn_no_drain db run with
        | () -> ()
        | exception (Ode_util.Failpoint.Crash _ as e) ->
            (* Simulated process death is not an action failure: the whole
               engine is dying, so weak coupling must not contain it. *)
            raise e
        | exception e ->
            (* A failed action aborts only itself (weak coupling). *)
            Log.warn (fun m ->
                m "trigger %s action failed: %s" a.tname (Printexc.to_string e))
      end

let drain db =
  if not db.draining then begin
    db.draining <- true;
    Fun.protect
      ~finally:(fun () -> db.draining <- false)
      (fun () ->
        let steps = ref 0 in
        let rec go () =
          match Queue.take_opt db.action_queue with
          | None -> ()
          | Some f ->
              incr steps;
              if !steps > max_cascade then begin
                Queue.clear db.action_queue;
                Log.err (fun m -> m "trigger cascade exceeded %d actions; stopping" max_cascade)
              end
              else begin
                run_firing db f;
                go ()
              end
        in
        go ())
  end

let with_txn db f =
  let v = with_txn_no_drain db f in
  drain db;
  v

(* A detached read-only transaction around [f]: safe to run on a reader
   domain concurrently with other readers (the caller holds the engine's
   shared lock; see Rwlock). Commit is trivial — queries cannot fire
   triggers, so there is nothing to drain. *)
let with_read_txn db f =
  let txn = Txn.begin_read db in
  match f txn with
  | v ->
      ignore (Txn.commit txn);
      v
  | exception e ->
      (match txn.tstate with `Active -> Txn.abort txn | `Committed | `Aborted -> ());
      raise e

let begin_txn = Txn.begin_

let commit txn =
  let db = txn.tdb in
  let firings = Txn.commit txn in
  List.iter (fun fr -> Queue.add fr db.action_queue) firings;
  drain db

let commit_deferred txn =
  let db = txn.tdb in
  let firings = Txn.commit_deferred txn in
  List.iter (fun fr -> Queue.add fr db.action_queue) firings;
  (* Trigger actions commit under the database mode; any deferred among them
     join the same pending batch and are acknowledged by the same sync. *)
  drain db

let abort = Txn.abort

(* -- durability ------------------------------------------------------------- *)

type durability = Types.durability = Full | Group | Async

let durability db = db.durability
let set_durability db d = db.durability <- d
let sync_commits = Txn.ack
let pending_commits = Txn.pending_commits

let durability_name = function Full -> "full" | Group -> "group" | Async -> "async"

let durability_of_string = function
  | "full" -> Some Full
  | "group" -> Some Group
  | "async" -> Some Async
  | _ -> None

(* -- replication ------------------------------------------------------------- *)

let lsn db = Wal.last_lsn db.wal
let durable_lsn db = Wal.durable_lsn db.wal

(* -- concurrency / MVCC introspection --------------------------------------- *)

let latch db = db.latch

(* Open read-write transactions as [(xid, read_ts)], oldest xid first — the
   shell's [.txns] report. *)
let open_txns db =
  List.sort compare (List.map (fun t -> (t.xid, t.read_ts)) (Txn.open_writers db))

let oldest_snapshot db = Mvcc.oldest_snapshot db.mvcc
let live_snapshots db = Mvcc.live_snapshots db.mvcc
let mvcc_chains db = Mvcc.chain_count db.mvcc
let mvcc_dead_versions db = Mvcc.dead_versions db.mvcc
let mvcc_reclaimed db = Mvcc.reclaimed_total db.mvcc
(* Residency gauges for the metrics endpoint: pages cached across the
   three buffer pools (heap, directory B+tree, index B+tree) and decoded
   objects in the object cache. *)
let pool_resident db =
  Buffer_pool.resident (Heap.pool db.kv_heap)
  + Buffer_pool.resident (Bptree.pool db.kv_dir)
  + Buffer_pool.resident (Bptree.pool db.idx)

let ocache_resident db = Ocache.resident db
let wal_tail db ~lsn = Wal.tail_from db.wal ~lsn
let set_wal_observer db f = Wal.set_on_sync db.wal f
let read_only db = db.read_only
let set_read_only db ro = db.read_only <- ro
let dir db = db.dbdir

(* Apply one shipped WAL batch on a standby: the same logical redo as
   [recover], driven by the replication stream instead of the local log. The
   records are appended to the standby's own WAL and fsynced *before* they
   are applied (write-ahead, so a standby crash mid-apply replays them), and
   the standby's commit LSN advances through those appends exactly as the
   primary's did. The primary only ships whole transactions (appends happen
   en bloc at commit, before any sync), so a batch never ends mid-txn.

   A [Checkpoint] record — always the last in its batch, since the primary's
   checkpoint syncs — is not copied into our log; it triggers the standby's
   own checkpoint, keeping its recovery just as bounded.

   Transactions are applied commit by commit, and each one's pre-images go
   into the standby's MVCC version chains under the commit timestamp the
   primary embedded in the record — so an explicit read transaction held
   open on a standby session observes exactly the snapshot it began with
   even while batches stream in, and primary and standby agree on version
   order. The whole apply holds the exclusive latch: a reader domain never
   observes a half-applied transaction. *)
let apply_replicated db (records : Wal.record list) =
  if db.closed then raise Db_closed;
  Ode_util.Trace.with_span ~cat:"repl" "repl.apply" @@ fun () ->
  Txn.with_excl db @@ fun () ->
  let committed = Hashtbl.create 8 in
  let checkpointed = ref false in
  List.iter
    (function
      | Wal.Commit (xid, trace, _) ->
          Hashtbl.replace committed xid ();
          (* One instant per traced commit, stamped with the trace id the
             primary logged, so this standby's dump correlates with the
             originating client's request spans across processes. *)
          if trace <> 0 then
            Ode_util.Trace.with_trace_id trace (fun () ->
                Ode_util.Trace.instant ~cat:"repl"
                  ~args:[ ("xid", string_of_int xid) ]
                  "repl.apply")
      | Wal.Checkpoint _ -> checkpointed := true
      | _ -> ())
    records;
  let base_lsn = Wal.last_lsn db.wal in
  List.iter
    (fun r -> match r with Wal.Checkpoint _ -> () | r -> Wal.append db.wal r)
    records;
  Wal.sync db.wal;
  let state_touched = ref false in
  let apply key op =
    Store.apply_op db key op;
    Ode_util.Stats.incr_recovery_replayed ();
    if
      key = Keys.catalog || key = Keys.meta
      || (String.length key > 0 && String.sub key 0 1 = Keys.trigger_prefix)
    then state_touched := true
  in
  (* Group each committed transaction's operations and land them at its
     Commit record: chains first (while the KV still holds the pre-images),
     then the writes. The primary ships whole transactions, so every
     grouped op meets its Commit within this batch. *)
  let pending : (int, (string * op) list) Hashtbl.t = Hashtbl.create 8 in
  let push xid key op =
    Hashtbl.replace pending xid ((key, op) :: Option.value ~default:[] (Hashtbl.find_opt pending xid))
  in
  let commits_seen = ref 0 in
  List.iter
    (function
      | Wal.Put (xid, key, payload) when Hashtbl.mem committed xid ->
          push xid key (Put payload)
      | Wal.Delete (xid, key) when Hashtbl.mem committed xid -> push xid key Del
      | Wal.Commit (xid, _, cts) ->
          incr commits_seen;
          if Hashtbl.mem committed xid then begin
            let ops = List.rev (Option.value ~default:[] (Hashtbl.find_opt pending xid)) in
            Hashtbl.remove pending xid;
            (* Records from a pre-timestamp primary carry no cts; fall back
               to the LSN this Commit received in our own log above — the
               same value the primary would have embedded. *)
            let ts = if cts <> 0 then cts else base_lsn + !commits_seen in
            Mvcc.commit db.mvcc ~ts ~except:0 ~pre:(Store.committed_image db)
              (List.filter_map
                 (fun (key, op) ->
                   if key = Keys.catalog || key = Keys.meta then None
                   else Some (key, match op with Put s -> Some s | Del -> None))
                 ops);
            List.iter (fun (key, op) -> apply key op) ops
          end
      | _ -> ())
    records;
  (* Schema, clock or trigger changes shipped from the primary must reach
     the standby's decoded mirrors, not just its pages. *)
  if !state_touched then begin
    Hashtbl.reset db.activations;
    Hashtbl.reset db.by_oid;
    load_state db
  end;
  if !checkpointed || Wal.size_bytes db.wal > db.wal_auto_checkpoint then Txn.checkpoint db

(* -- schema ---------------------------------------------------------------------- *)

(* DDL mutates the shared catalog mirror in place before committing it, so
   it cannot overlap any open write transaction (whose snapshot it would
   pollute) — not just "a" transaction on this session. *)
let require_no_txn db what =
  if Hashtbl.length db.wtxns > 0 then
    invalid_arg (what ^ " cannot run inside a transaction")

(* DDL and the clock mutate in-memory state before the commit that would
   reject them, so a standby refuses them up front. *)
let require_writable db = if db.read_only then raise Read_only_store

let define_class db (decl : Ast.class_decl) =
  require_no_txn db "define_class";
  require_writable db;
  Txn.with_excl db @@ fun () ->
  (* Resolve the would-be field set to drive the implicit-this rewrite. *)
  let parent_fields =
    List.concat_map
      (fun p ->
        match Catalog.find db.catalog p with
        | Some c -> Schema.field_names (Catalog.all_fields db.catalog c)
        | None -> raise (Schema_error (Printf.sprintf "unknown parent class %s" p)))
      decl.c_parents
  in
  let own = List.map (fun (f : Ast.field_decl) -> f.fd_name) decl.c_fields in
  let decl = Rewrite.class_decl decl ~all_field_names:(parent_fields @ own) in
  let cls = Catalog.define db.catalog decl in
  (match Typecheck.check_class db.catalog cls with
  | () -> ()
  | exception e ->
      (* A class that fails typechecking must not stay registered: restore
         the catalog from its last persisted state. *)
      db.catalog <-
        (match Kv.get db Keys.catalog with
        | Some s -> Catalog.decode s
        | None -> Catalog.create ());
      raise e);
  ignore (with_txn_no_drain db (fun txn -> txn.catalog_dirty <- true));
  cls

let define db source =
  let tops = Ode_lang.Parser.program source in
  List.map
    (function
      | Ast.TClass decl -> define_class db decl
      | _ -> raise (Schema_error "define: only class declarations are allowed here"))
    tops

let create_cluster db name =
  require_no_txn db "create_cluster";
  require_writable db;
  Txn.with_excl db @@ fun () ->
  Catalog.create_cluster db.catalog name;
  ignore (with_txn_no_drain db (fun txn -> txn.catalog_dirty <- true))

let create_index db ~cls ~field =
  require_no_txn db "create_index";
  require_writable db;
  Txn.with_excl db @@ fun () ->
  Catalog.add_index db.catalog ~cls ~field;
  let idx_id =
    match Store.index_ids db ~cls ~field with Some i -> i | None -> assert false
  in
  (* Backfill from every object in the cluster hierarchy. *)
  ignore
    (with_txn_no_drain db (fun txn ->
         txn.catalog_dirty <- true;
         let classes = Catalog.subclasses db.catalog cls in
         List.iter
           (fun cname ->
             match Catalog.find db.catalog cname with
             | None -> ()
             | Some c ->
                 Kv.iter_prefix db (Keys.header_prefix_class c.Schema.id) (fun key _ ->
                     let oid = Keys.oid_of_header_key key in
                     (match Store.get_field db (Some txn) oid field with
                     | Some v ->
                         Store.write txn
                           (Keys.index_entry ~idx_id ~valkey:(Value.index_key v) ~oid)
                           ""
                     | None -> ());
                     true))
           classes))

let catalog db = db.catalog

(* -- planner statistics ------------------------------------------------------ *)

(* `analyze`: one full committed-state scan producing the statistics
   snapshot, then an ordinary transaction writing it under the 'S' key —
   the commit apply installs it (Store.apply_op), and WAL/replication/
   recovery carry it like any other committed write. DDL-like: runs
   outside transactions so the scan summarizes a quiesced committed
   state. *)
let analyze db =
  require_no_txn db "analyze";
  require_writable db;
  let payload = Ostats.compute db in
  ignore (with_txn_no_drain db (fun txn -> Store.write txn Keys.stats payload));
  Ode_util.Stats.incr_planner_analyze_runs ();
  Ostats.describe db

let stats_summary db = Ostats.describe db
let stats_analyzed db = Ostats.analyzed db
let stats_stale db = Ostats.stale db

(* -- objects ------------------------------------------------------------------------ *)

let pnew txn cname inits =
  let cls = Catalog.find_exn txn.tdb.catalog cname in
  Store.create txn cls inits

let pdelete txn oid = Store.delete_object txn oid
let get txn oid = Store.get_fields txn.tdb (Some txn) oid

let get_field txn oid fname =
  match Store.get_field txn.tdb (Some txn) oid fname with
  | Some v -> v
  | None -> raise Not_found

let set_field txn oid fname v = Store.update_fields txn oid [ (fname, v) ]
let update txn oid fields = Store.update_fields txn oid fields
let exists db ?txn oid = Store.exists db (match txn with Some t -> Some t | None -> db.active) oid

let class_name_of db oid =
  Option.map (fun (c : Schema.cls) -> c.Schema.name) (Store.class_of db oid)

let is_instance db oid super =
  match class_name_of db oid with
  | Some sub -> Catalog.is_subclass db.catalog ~sub ~super
  | None -> false

let call txn oid m args = Runtime.call_method txn.tdb (Some txn) (Value.Ref oid) m args
let eval txn ?(vars = []) e = Runtime.eval txn.tdb (Some txn) ~vars e

(* -- versions -------------------------------------------------------------------------- *)

let newversion txn oid = Store.new_version txn oid

let header_exn txn oid =
  match Store.get_header txn.tdb (Some txn) oid with
  | Some h -> h
  | None -> raise Not_found

(* Stored newest-first; callers expect ascending. *)
let versions txn oid = List.rev (header_exn txn oid).Store.hversions
let current_version txn oid = (header_exn txn oid).Store.hcurrent
let get_version txn vr = Store.get_fields_v txn.tdb (Some txn) vr
let pdelete_version txn vr = Store.delete_version txn vr

(* -- triggers --------------------------------------------------------------------------- *)

let activate txn oid tname args = Triggers.activate txn oid tname args
let deactivate txn tid = Triggers.deactivate txn tid

let advance_time db n =
  require_no_txn db "advance_time";
  require_writable db;
  if n < 0 then invalid_arg "advance_time: negative step";
  with_txn_no_drain db (fun txn ->
      Txn.with_excl db (fun () -> db.meta.clock <- db.meta.clock + n);
      txn.meta_dirty <- true);
  let expired = Triggers.expired db in
  if expired <> [] then begin
    with_txn_no_drain db (fun txn ->
        List.iter (fun (a : activation) -> Triggers.deactivate txn a.tid) expired);
    List.iter
      (fun a -> Queue.add { f_act = a; f_kind = Timed_out } db.action_queue)
      (List.sort (fun a b -> Int.compare a.tid b.tid) expired)
  end;
  drain db

let now db = db.meta.clock
let set_action_printer db p = db.printer <- p

(* -- roots ---------------------------------------------------------------------------- *)

let set_root txn name v =
  let b = Buffer.create 16 in
  Value.encode b v;
  Store.write txn (Keys.root name) (Buffer.contents b)

let root txn name =
  match Store.read txn.tdb (Some txn) (Keys.root name) with
  | None -> None
  | Some s -> Some (Value.decode (Ode_util.Codec.cursor s))

let root_exn txn name =
  match root txn name with Some v -> v | None -> raise Not_found
