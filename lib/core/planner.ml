module Ast = Ode_lang.Ast
module Value = Ode_model.Value
module Catalog = Ode_model.Catalog
module Eval = Ode_model.Eval
open Types

type access =
  | Full_scan
  | Index_eq of { idx_id : int; field : string; value : Value.t }
  | Index_range of {
      idx_id : int;
      field : string;
      lo : (Value.t * bool) option;
      hi : (Value.t * bool) option;
    }

type plan = {
  p_cls : string;
  p_deep : bool;
  p_classes : string list;
  p_access : access;
  p_residual : Ast.expr option;
  p_var : string;
}

(* -- conjunct analysis ------------------------------------------------------ *)

let rec conjuncts (e : Ast.expr) =
  match e with
  | Binop (And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let rec conjoin = function
  | [] -> None
  | [ e ] -> Some e
  | e :: rest -> ( match conjoin rest with Some r -> Some (Ast.Binop (And, e, r)) | None -> Some e)

(* An expression is constant for the scan if it never mentions the loop
   variable or [this]; such expressions are evaluated once up front. *)
let rec closed_for var (e : Ast.expr) =
  match e with
  | Var x -> x <> var
  | This -> false
  | Null | Int _ | Float _ | Bool _ | Str _ -> true
  | Field (b, _) -> closed_for var b
  | Binop (_, a, b) -> closed_for var a && closed_for var b
  | Unop (_, a) -> closed_for var a
  | Call (recv, _, args) ->
      Option.fold ~none:true ~some:(closed_for var) recv && List.for_all (closed_for var) args
  | Is (a, _) -> closed_for var a
  | SetLit es | ListLit es -> List.for_all (closed_for var) es

(* A sargable conjunct: [var.field OP closed-expr] (or mirrored). Returns
   (field, op-normalized-with-field-on-the-left, constant value). *)
type sarg = { s_field : string; s_op : Ast.binop; s_const : Value.t }

let flip_op : Ast.binop -> Ast.binop = function
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le
  | op -> op

let as_sarg db txn env var (e : Ast.expr) =
  let eval_const c =
    match Runtime.eval db txn ~vars:env c with v -> Some v | exception Eval.Error _ -> None
  in
  match e with
  | Binop (((Eq | Lt | Le | Gt | Ge) as op), Field (Var v, f), c) when v = var && closed_for var c
    -> (
      match eval_const c with
      | Some value -> Some { s_field = f; s_op = op; s_const = value }
      | None -> None)
  | Binop (((Eq | Lt | Le | Gt | Ge) as op), c, Field (Var v, f)) when v = var && closed_for var c
    -> (
      match eval_const c with
      | Some value -> Some { s_field = f; s_op = flip_op op; s_const = value }
      | None -> None)
  | _ -> None

(* -- plan construction ----------------------------------------------------------- *)

let indexable_value (v : Value.t) =
  match v with Null | Int _ | Float _ | Bool _ | Str _ | Ref _ -> true | _ -> false

let plan db ?txn ?(env = []) ~var ~cls ~deep ~suchthat () =
  let _ = Catalog.find_exn db.catalog cls in
  let classes = if deep then Catalog.subclasses db.catalog cls else [ cls ] in
  let indexed = Catalog.indexes_on db.catalog cls in
  (* Constant-conjunct evaluation reads through the planning transaction's
     view; [db.active] is only a writer-domain fallback. *)
  let txn = match txn with Some _ as t -> t | None -> db.active in
  match suchthat with
  | None ->
      { p_cls = cls; p_deep = deep; p_classes = classes; p_access = Full_scan; p_residual = None; p_var = var }
  | Some e ->
      let cs = conjuncts e in
      let tagged = List.map (fun c -> (c, as_sarg db txn env var c)) cs in
      (* Prefer an equality probe; otherwise combine the range conjuncts on
         one indexed field. *)
      let indexed_sargs =
        List.filter_map
          (fun (c, s) ->
            match s with
            | Some s when List.mem s.s_field indexed && indexable_value s.s_const -> Some (c, s)
            | _ -> None)
          tagged
      in
      let pick_index field =
        (* The index may be declared on an ancestor: find it up the lineage. *)
        let ancestors =
          List.map
            (fun (a : Ode_model.Schema.cls) -> a.Ode_model.Schema.name)
            (Catalog.lineage db.catalog (Catalog.find_exn db.catalog cls))
        in
        let rec go i = function
          | [] -> None
          | (icls, f) :: rest ->
              if f = field && List.mem icls ancestors then Some i else go (i + 1) rest
        in
        go 0 (Catalog.indexes db.catalog)
      in
      let eq = List.find_opt (fun (_, s) -> s.s_op = Ast.Eq) indexed_sargs in
      let access, used =
        match eq with
        | Some (c, s) -> (
            match pick_index s.s_field with
            | Some idx_id -> (Index_eq { idx_id; field = s.s_field; value = s.s_const }, [ c ])
            | None -> (Full_scan, []))
        | None -> (
            (* Gather range bounds on the first indexed field that has any. *)
            match indexed_sargs with
            | [] -> (Full_scan, [])
            | (_, s0) :: _ -> (
                let field = s0.s_field in
                let same = List.filter (fun (_, s) -> s.s_field = field) indexed_sargs in
                (* Bounds narrow the scan; the conjuncts stay in the residual,
                   so an imperfect bound combination can never produce wrong
                   results, only a wider scan. Still, combine to the tightest
                   bound: max of the lows, min of the highs, strict beating
                   inclusive on ties (x > 10 && x > 5 must plan > 10). *)
                let tighter_lo cur (v, incl) =
                  match cur with
                  | None -> Some (v, incl)
                  | Some (v0, incl0) ->
                      let c = Value.compare v v0 in
                      if c > 0 then Some (v, incl)
                      else if c < 0 then cur
                      else Some (v0, incl0 && incl)
                in
                let tighter_hi cur (v, incl) =
                  match cur with
                  | None -> Some (v, incl)
                  | Some (v0, incl0) ->
                      let c = Value.compare v v0 in
                      if c < 0 then Some (v, incl)
                      else if c > 0 then cur
                      else Some (v0, incl0 && incl)
                in
                let lo, hi =
                  List.fold_left
                    (fun (lo, hi) (_, s) ->
                      match s.s_op with
                      | Ast.Gt -> (tighter_lo lo (s.s_const, false), hi)
                      | Ast.Ge -> (tighter_lo lo (s.s_const, true), hi)
                      | Ast.Lt -> (lo, tighter_hi hi (s.s_const, false))
                      | Ast.Le -> (lo, tighter_hi hi (s.s_const, true))
                      | _ -> (lo, hi))
                    (None, None) same
                in
                match pick_index field with
                | Some idx_id when lo <> None || hi <> None ->
                    (Index_range { idx_id; field; lo; hi }, [])
                | _ -> (Full_scan, [])))
      in
      let residual = conjoin (List.filter (fun c -> not (List.memq c used)) cs) in
      { p_cls = cls; p_deep = deep; p_classes = classes; p_access = access; p_residual = residual; p_var = var }

let access_label p =
  match p.p_access with
  | Full_scan ->
      Printf.sprintf "full scan of cluster %s%s" p.p_cls (if p.p_deep then " (deep)" else "")
  | Index_eq { field; value; _ } ->
      Printf.sprintf "index probe %s(%s) = %s" p.p_cls field (Value.to_string value)
  | Index_range { field; lo; hi; _ } ->
      let bound (v, incl) op = Printf.sprintf "%s%s %s" op (if incl then "=" else "") (Value.to_string v) in
      let parts =
        List.filter_map Fun.id
          [ Option.map (fun x -> bound x ">") lo; Option.map (fun x -> bound x "<") hi ]
      in
      Printf.sprintf "index range %s(%s) %s" p.p_cls field (String.concat " and " parts)

let explain p =
  let b = Buffer.create 64 in
  Buffer.add_string b (access_label p);
  (match p.p_residual with
  | Some e -> Buffer.add_string b (" — residual: " ^ Ode_lang.Pp.expr_to_string e)
  | None -> ());
  Buffer.contents b

(* -- per-node plan annotation (for EXPLAIN ANALYZE / Query.profile) -------- *)

type node_kind = Access | Filter | Order | Output

let nodes ?suchthat p =
  let access = (Access, access_label p) in
  (* The executor re-evaluates the whole [suchthat] per candidate even when
     a conjunct became the index bound (the overlay may hold uncommitted
     writes the index does not reflect), so the filter node carries the
     residual when one exists and the full re-checked predicate otherwise. *)
  let filter =
    match (p.p_residual, suchthat) with
    | Some e, _ -> [ (Filter, "filter: " ^ Ode_lang.Pp.expr_to_string e) ]
    | None, Some e -> [ (Filter, "filter (re-check): " ^ Ode_lang.Pp.expr_to_string e) ]
    | None, None -> []
  in
  access :: filter
