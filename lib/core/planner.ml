module Ast = Ode_lang.Ast
module Value = Ode_model.Value
module Schema = Ode_model.Schema
module Otype = Ode_model.Otype
module Catalog = Ode_model.Catalog
module Eval = Ode_model.Eval
module Dist = Ode_util.Histogram.Dist
open Types

type access =
  | Full_scan
  | Index_eq of { idx_id : int; field : string; value : Value.t }
  | Index_range of {
      idx_id : int;
      field : string;
      lo : (Value.t * bool) option;
      hi : (Value.t * bool) option;
    }

(* Cardinality/cost estimate attached to every plan. Costs are abstract
   work units (~one unit per object touched); they only need to order
   alternatives, not predict wall time. *)
type estimate = {
  est_rows : float;  (** candidates the access path will emit *)
  est_out : float;  (** rows expected to survive the filter *)
  est_cost : float;  (** total access cost *)
  est_stats : bool;  (** true when derived from analyze statistics *)
}

type plan = {
  p_cls : string;
  p_deep : bool;
  p_classes : string list;
  p_access : access;
  p_residual : Ast.expr option;
  p_var : string;
  p_est : estimate;
}

(* -- conjunct analysis ------------------------------------------------------ *)

let rec conjuncts (e : Ast.expr) =
  match e with
  | Binop (And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let rec conjoin = function
  | [] -> None
  | [ e ] -> Some e
  | e :: rest -> ( match conjoin rest with Some r -> Some (Ast.Binop (And, e, r)) | None -> Some e)

(* An expression is constant for the scan if it never mentions the loop
   variable or [this]; such expressions are evaluated once up front. *)
let rec closed_for var (e : Ast.expr) =
  match e with
  | Var x -> x <> var
  | This -> false
  | Null | Int _ | Float _ | Bool _ | Str _ -> true
  | Field (b, _) -> closed_for var b
  | Binop (_, a, b) -> closed_for var a && closed_for var b
  | Unop (_, a) -> closed_for var a
  | Call (recv, _, args) ->
      Option.fold ~none:true ~some:(closed_for var) recv && List.for_all (closed_for var) args
  | Is (a, _) -> closed_for var a
  | SetLit es | ListLit es -> List.for_all (closed_for var) es

(* A sargable conjunct: [var.field OP closed-expr] (or mirrored). Returns
   (field, op-normalized-with-field-on-the-left, constant value). *)
type sarg = { s_field : string; s_op : Ast.binop; s_const : Value.t }

let flip_op : Ast.binop -> Ast.binop = function
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le
  | op -> op

let as_sarg db txn env var (e : Ast.expr) =
  let eval_const c =
    match Runtime.eval db txn ~vars:env c with v -> Some v | exception Eval.Error _ -> None
  in
  match e with
  | Binop (((Eq | Lt | Le | Gt | Ge) as op), Field (Var v, f), c) when v = var && closed_for var c
    -> (
      match eval_const c with
      | Some value -> Some { s_field = f; s_op = op; s_const = value }
      | None -> None)
  | Binop (((Eq | Lt | Le | Gt | Ge) as op), c, Field (Var v, f)) when v = var && closed_for var c
    -> (
      match eval_const c with
      | Some value -> Some { s_field = f; s_op = flip_op op; s_const = value }
      | None -> None)
  | _ -> None

(* -- cost model ------------------------------------------------------------- *)

(* Without statistics the planner prices plans with textbook defaults; after
   [analyze] the defaults are replaced by histogram fractions. *)
let default_card = 1000.0
let probe_cost = 4.0 (* per index candidate: header fetch + liveness + re-check *)
let descent_cost = 8.0 (* positioning a tree cursor *)
let default_eq_sel = 0.05
let default_range_sel = 0.30
let default_misc_sel = 0.33

let default_sel_of_op (op : Ast.binop) =
  match op with Eq -> default_eq_sel | Lt | Le | Gt | Ge -> default_range_sel | _ -> default_misc_sel

(* Histograms are trusted only while fresh; stale or absent statistics send
   the planner down the original heuristic path. *)
let fresh_stats db = Ostats.analyzed db && not (Ostats.stale db)

let extent_card db classes =
  List.fold_left
    (fun acc cname ->
      match Catalog.find db.catalog cname with
      | None -> acc
      | Some (c : Schema.cls) -> acc +. float_of_int (Option.value (Ostats.card db c.Schema.id) ~default:0))
    0.0 classes

let indexable_value (v : Value.t) =
  match v with Null | Int _ | Float _ | Bool _ | Str _ | Ref _ -> true | _ -> false

(* The index may be declared on an ancestor: find it up the lineage. *)
let pick_index db cls field =
  match Catalog.find db.catalog cls with
  | None -> None
  | Some c ->
      let ancestors =
        List.map (fun (a : Schema.cls) -> a.Schema.name) (Catalog.lineage db.catalog c)
      in
      let rec go i = function
        | [] -> None
        | (icls, f) :: rest ->
            if f = field && List.mem icls ancestors then Some i else go (i + 1) rest
      in
      go 0 (Catalog.indexes db.catalog)

(* Fraction of an index's entries matched by a sargable conjunct, from its
   analyze-time key histogram. None when the histogram cannot answer. *)
let hist_sel db idx_id (s : sarg) =
  match Ostats.idx_stat db idx_id with
  | Some st when st.is_total > 0 && indexable_value s.s_const -> (
      let d = st.is_hist in
      let k = Value.index_key s.s_const in
      match s.s_op with
      | Ast.Eq -> Some (Dist.eq_fraction d k)
      | Ast.Lt -> Some (Dist.range_fraction d None (Some (k, false)))
      | Ast.Le -> Some (Dist.range_fraction d None (Some (k, true)))
      | Ast.Gt -> Some (Dist.range_fraction d (Some (k, false)) None)
      | Ast.Ge -> Some (Dist.range_fraction d (Some (k, true)) None)
      | _ -> None)
  | _ -> None

(* Selectivity of one conjunct, for sizing the filter output. *)
let conjunct_sel db ~use_stats ~cls (_, sarg) =
  match sarg with
  | Some s -> (
      let from_stats =
        if use_stats then
          match pick_index db cls s.s_field with Some idx_id -> hist_sel db idx_id s | None -> None
        else None
      in
      match from_stats with Some f -> f | None -> default_sel_of_op s.s_op)
  | None -> default_misc_sel

(* -- plan construction ------------------------------------------------------ *)

(* A candidate access path: [c_used] conjuncts are consumed (dropped from the
   residual), [c_counted] ones are already reflected in [c_rows] and must not
   be charged again when sizing the filter output. *)
type cand = {
  c_access : access;
  c_used : Ast.expr list;
  c_counted : Ast.expr list;
  c_rows : float;
  c_cost : float;
}

let plan db ?txn ?(env = []) ~var ~cls ~deep ~suchthat () =
  let _ = Catalog.find_exn db.catalog cls in
  let classes = if deep then Catalog.subclasses db.catalog cls else [ cls ] in
  let indexed = Catalog.indexes_on db.catalog cls in
  (* Constant-conjunct evaluation reads through the planning transaction's
     view; [db.active] is only a writer-domain fallback. *)
  let txn = match txn with Some _ as t -> t | None -> db.active in
  let use_stats = fresh_stats db in
  let n = if Ostats.analyzed db then extent_card db classes else default_card in
  match suchthat with
  | None ->
      {
        p_cls = cls; p_deep = deep; p_classes = classes; p_access = Full_scan;
        p_residual = None; p_var = var;
        p_est = { est_rows = n; est_out = n; est_cost = n; est_stats = use_stats };
      }
  | Some e ->
      if use_stats then Ode_util.Stats.incr_planner_stats_hits ()
      else Ode_util.Stats.incr_planner_fallbacks ();
      let cs = conjuncts e in
      let tagged = List.map (fun c -> (c, as_sarg db txn env var c)) cs in
      let indexed_sargs =
        List.filter_map
          (fun (c, s) ->
            match s with
            | Some s when List.mem s.s_field indexed && indexable_value s.s_const -> Some (c, s)
            | _ -> None)
          tagged
      in
      (* Index entries matched by an access path, and its cost. *)
      let idx_total idx_id =
        match Ostats.idx_stat db idx_id with Some st -> float_of_int st.is_total | None -> 0.0
      in
      let index_cand rows access used counted =
        { c_access = access; c_used = used; c_counted = counted;
          c_rows = rows; c_cost = descent_cost +. (rows *. probe_cost) }
      in
      let eq_cand (c, s) =
        match pick_index db cls s.s_field with
        | None -> None
        | Some idx_id ->
            let rows =
              match (use_stats, hist_sel db idx_id s) with
              | true, Some frac -> frac *. idx_total idx_id
              | _ -> default_eq_sel *. n
            in
            Some
              (index_cand rows (Index_eq { idx_id; field = s.s_field; value = s.s_const }) [ c ]
                 [ c ])
      in
      (* Combine the range conjuncts on one indexed field into the tightest
         bounds: max of the lows, min of the highs, strict beating inclusive
         on ties (x > 10 && x > 5 must plan > 10). The conjuncts stay in the
         residual, so an imperfect combination can never produce wrong
         results, only a wider scan. *)
      let tighter_lo cur (v, incl) =
        match cur with
        | None -> Some (v, incl)
        | Some (v0, incl0) ->
            let c = Value.compare v v0 in
            if c > 0 then Some (v, incl) else if c < 0 then cur else Some (v0, incl0 && incl)
      in
      let tighter_hi cur (v, incl) =
        match cur with
        | None -> Some (v, incl)
        | Some (v0, incl0) ->
            let c = Value.compare v v0 in
            if c < 0 then Some (v, incl) else if c > 0 then cur else Some (v0, incl0 && incl)
      in
      let range_cand field =
        let same = List.filter (fun (_, s) -> s.s_field = field) indexed_sargs in
        let lo, hi =
          List.fold_left
            (fun (lo, hi) (_, s) ->
              match s.s_op with
              | Ast.Gt -> (tighter_lo lo (s.s_const, false), hi)
              | Ast.Ge -> (tighter_lo lo (s.s_const, true), hi)
              | Ast.Lt -> (lo, tighter_hi hi (s.s_const, false))
              | Ast.Le -> (lo, tighter_hi hi (s.s_const, true))
              | _ -> (lo, hi))
            (None, None) same
        in
        match pick_index db cls field with
        | Some idx_id when lo <> None || hi <> None ->
            let counted = List.map fst (List.filter (fun (_, s) -> s.s_op <> Ast.Eq) same) in
            let bound_key = Option.map (fun (v, incl) -> (Value.index_key v, incl)) in
            let rows =
              match Ostats.idx_stat db idx_id with
              | Some st when use_stats && st.is_total > 0 ->
                  Dist.range_fraction st.is_hist (bound_key lo) (bound_key hi)
                  *. float_of_int st.is_total
              | _ ->
                  let frac =
                    if lo <> None && hi <> None then default_range_sel /. 2.0
                    else default_range_sel
                  in
                  frac *. n
            in
            Some (index_cand rows (Index_range { idx_id; field; lo; hi }) [] counted)
        | _ -> None
      in
      let full = { c_access = Full_scan; c_used = []; c_counted = []; c_rows = n; c_cost = n } in
      let chosen =
        if use_stats then begin
          (* Cost-based: price every candidate access path and take the
             cheapest; full scan wins ties (it is the simplest plan). *)
          let range_fields =
            List.sort_uniq compare
              (List.filter_map
                 (fun (_, s) -> if s.s_op <> Ast.Eq then Some s.s_field else None)
                 indexed_sargs)
          in
          let cands =
            List.filter_map eq_cand (List.filter (fun (_, s) -> s.s_op = Ast.Eq) indexed_sargs)
            @ List.filter_map range_cand range_fields
          in
          List.fold_left (fun best c -> if c.c_cost < best.c_cost then c else best) full cands
        end
        else begin
          (* Heuristic (no trustworthy statistics): prefer an equality probe,
             otherwise range-bound the first indexed field that has bounds. *)
          match List.find_opt (fun (_, s) -> s.s_op = Ast.Eq) indexed_sargs with
          | Some eq -> ( match eq_cand eq with Some c -> c | None -> full)
          | None -> (
              match indexed_sargs with
              | [] -> full
              | (_, s0) :: _ -> ( match range_cand s0.s_field with Some c -> c | None -> full))
        end
      in
      let residual_cs = List.filter (fun c -> not (List.memq c chosen.c_used)) cs in
      let res_sel =
        List.fold_left
          (fun acc ((c, _) as tc) ->
            if List.memq c chosen.c_counted then acc
            else acc *. conjunct_sel db ~use_stats ~cls tc)
          1.0 tagged
      in
      {
        p_cls = cls; p_deep = deep; p_classes = classes; p_access = chosen.c_access;
        p_residual = conjoin residual_cs; p_var = var;
        p_est =
          {
            est_rows = chosen.c_rows;
            est_out = chosen.c_rows *. res_sel;
            est_cost = chosen.c_cost;
            est_stats = use_stats;
          };
      }

let access_label p =
  match p.p_access with
  | Full_scan ->
      Printf.sprintf "full scan of cluster %s%s" p.p_cls (if p.p_deep then " (deep)" else "")
  | Index_eq { field; value; _ } ->
      Printf.sprintf "index probe %s(%s) = %s" p.p_cls field (Value.to_string value)
  | Index_range { field; lo; hi; _ } ->
      let bound (v, incl) op = Printf.sprintf "%s%s %s" op (if incl then "=" else "") (Value.to_string v) in
      let parts =
        List.filter_map Fun.id
          [ Option.map (fun x -> bound x ">") lo; Option.map (fun x -> bound x "<") hi ]
      in
      Printf.sprintf "index range %s(%s) %s" p.p_cls field (String.concat " and " parts)

let estimate_label est =
  Printf.sprintf "est ~%.0f rows, cost ~%.0f (%s)" est.est_out est.est_cost
    (if est.est_stats then "stats" else "heuristic")

let explain p =
  let b = Buffer.create 64 in
  Buffer.add_string b (access_label p);
  Buffer.add_string b (" — " ^ estimate_label p.p_est);
  (match p.p_residual with
  | Some e -> Buffer.add_string b (" — residual: " ^ Ode_lang.Pp.expr_to_string e)
  | None -> ());
  Buffer.contents b

(* -- per-node plan annotation (for EXPLAIN ANALYZE / Query.profile) -------- *)

type node_kind = Access | Filter | Order | Output

let nodes ?suchthat p =
  let est = p.p_est in
  let access =
    (Access, Printf.sprintf "%s [~%.0f rows, cost ~%.0f]" (access_label p) est.est_rows est.est_cost)
  in
  (* The executor re-evaluates the whole [suchthat] per candidate even when
     a conjunct became the index bound (the overlay may hold uncommitted
     writes the index does not reflect), so the filter node carries the
     residual when one exists and the full re-checked predicate otherwise. *)
  let flabel tag e =
    Printf.sprintf "filter%s: %s [~%.0f rows]" tag (Ode_lang.Pp.expr_to_string e) est.est_out
  in
  let filter =
    match (p.p_residual, suchthat) with
    | Some e, _ -> [ (Filter, flabel "" e) ]
    | None, Some e -> [ (Filter, flabel " (re-check)" e) ]
    | None, None -> []
  in
  access :: filter

(* -- join planning (collection-join fusion, paper §3.1) --------------------- *)

type join_strategy =
  | Nested_loop
  | Fused_deref of string
  | Fused_member of string
  | Hash_join of { outer_field : string; inner_field : string }

type join_plan = {
  j_ovar : string;
  j_ivar : string;
  j_outer : plan;
  j_inner_cls : string;
  j_inner_deep : bool;
  j_inner_only : Ast.expr option;
  j_strategy : join_strategy;
  j_rows : float;
  j_cost : float;
  j_nested_cost : float;
  j_stats : bool;
}

(* Only fields of a statically scalar type can key a hash join: container
   values have no order-preserving byte encoding to hash on. *)
let scalar_field db cls_name f =
  match Catalog.find db.catalog cls_name with
  | None -> false
  | Some c -> (
      match Schema.find_field (Catalog.all_fields db.catalog c) f with
      | Some fd -> (
          match fd.Schema.ftype with
          | Otype.TInt | Otype.TFloat | Otype.TBool | Otype.TString | Otype.TRef _ -> true
          | Otype.TSet _ | Otype.TList _ -> false)
      | None -> false)

let plan_join db ?txn ?(env = []) ~outer:(ovar, ocls, odeep) ~inner:(ivar, icls, ideep)
    ?outer_suchthat ?inner_suchthat () =
  let _ = Catalog.find_exn db.catalog icls in
  let txn = match txn with Some _ as t -> t | None -> db.active in
  let op = plan db ?txn ~env ~var:ovar ~cls:ocls ~deep:odeep ~suchthat:outer_suchthat () in
  let iclasses = if ideep then Catalog.subclasses db.catalog icls else [ icls ] in
  let cs = match inner_suchthat with None -> [] | Some e -> conjuncts e in
  (* Conjuncts that never mention the outer variable filter the inner side
     alone; the rest link the two extents and are re-checked per pair. *)
  let inner_only_cs, cross = List.partition (closed_for ovar) cs in
  let use_stats = fresh_stats db in
  let n_in = if Ostats.analyzed db then extent_card db iclasses else default_card in
  let n_out = op.p_est.est_out in
  let itagged = List.map (fun c -> (c, as_sarg db txn env ivar c)) inner_only_cs in
  let isel =
    List.fold_left (fun acc tc -> acc *. conjunct_sel db ~use_stats ~cls:icls tc) 1.0 itagged
  in
  let m_in = n_in *. isel in
  (* Link shapes, strongest first: [i == o.f] reaches the inner object
     through the outer's ref field (no inner scan at all); [i in o.fs]
     through its set/list field; [i.g == o.f] can hash-partition. *)
  let deref_link =
    List.find_map
      (fun (c : Ast.expr) ->
        match c with
        | Binop (Eq, Var v, Field (Var o, f)) when v = ivar && o = ovar -> Some f
        | Binop (Eq, Field (Var o, f), Var v) when v = ivar && o = ovar -> Some f
        | _ -> None)
      cross
  in
  let member_link =
    List.find_map
      (fun (c : Ast.expr) ->
        match c with
        | Binop (In, Var v, Field (Var o, f)) when v = ivar && o = ovar -> Some f
        | _ -> None)
      cross
  in
  let hash_link =
    List.find_map
      (fun (c : Ast.expr) ->
        match c with
        | Binop (Eq, Field (Var a, g), Field (Var b, f)) when a = ivar && b = ovar -> Some (f, g)
        | Binop (Eq, Field (Var b, f), Field (Var a, g)) when a = ivar && b = ovar -> Some (f, g)
        | _ -> None)
      cross
  in
  let join_eq_sel g =
    match (if use_stats then pick_index db icls g else None) with
    | Some idx_id -> (
        match Ostats.idx_stat db idx_id with
        | Some st when st.is_distinct > 0 -> 1.0 /. float_of_int st.is_distinct
        | _ -> default_eq_sel)
    | None -> default_eq_sel
  in
  let cross_sel =
    List.fold_left
      (fun acc (c : Ast.expr) ->
        acc
        *.
        match c with
        | Binop (Eq, Field (Var a, g), Field (Var _, _)) when a = ivar -> join_eq_sel g
        | Binop (Eq, Field (Var _, _), Field (Var a, g)) when a = ivar -> join_eq_sel g
        | _ -> default_misc_sel)
      1.0 cross
  in
  let nested_rows = n_out *. m_in *. cross_sel in
  (* Per-outer-row cost of the unfused inner loop: an index on the inner
     join field turns it into a probe, anything else rescans the extent. *)
  let inner_per_probe =
    match hash_link with
    | Some (_, g) when pick_index db icls g <> None ->
        descent_cost +. (join_eq_sel g *. n_in *. probe_cost)
    | _ -> n_in
  in
  let nested_cost = op.p_est.est_cost +. (n_out *. inner_per_probe) in
  let strategy, rows, cost =
    match (deref_link, member_link, hash_link) with
    | Some f, _, _ -> (Fused_deref f, n_out *. isel, op.p_est.est_cost +. (n_out *. 2.0))
    | None, Some f, _ ->
        (* Average container size is unknowable without field statistics;
           price it as a small constant fan-out. *)
        (Fused_member f, n_out *. 4.0 *. isel, op.p_est.est_cost +. (n_out *. 4.0))
    | None, None, Some (f, g) when use_stats && scalar_field db icls g && scalar_field db ocls f
      ->
        let hash_rows = n_out *. m_in *. join_eq_sel g in
        let hash_cost = op.p_est.est_cost +. n_in +. (n_out *. 2.0) +. hash_rows in
        if hash_cost < nested_cost then
          (Hash_join { outer_field = f; inner_field = g }, hash_rows, hash_cost)
        else (Nested_loop, nested_rows, nested_cost)
    | None, None, _ -> (Nested_loop, nested_rows, nested_cost)
  in
  {
    j_ovar = ovar;
    j_ivar = ivar;
    j_outer = op;
    j_inner_cls = icls;
    j_inner_deep = ideep;
    j_inner_only = conjoin inner_only_cs;
    j_strategy = strategy;
    j_rows = rows;
    j_cost = cost;
    j_nested_cost = nested_cost;
    j_stats = use_stats;
  }

let explain_join jp =
  let strat =
    match jp.j_strategy with
    | Nested_loop ->
        Printf.sprintf "nested-loop join (inner %s replanned per outer row)" jp.j_inner_cls
    | Fused_deref f ->
        Printf.sprintf "fused join: deref %s.%s (no %s scan)" jp.j_ovar f jp.j_inner_cls
    | Fused_member f ->
        Printf.sprintf "fused join: members of %s.%s (no %s scan)" jp.j_ovar f jp.j_inner_cls
    | Hash_join { outer_field; inner_field } ->
        Printf.sprintf "hash join: build %s on %s.%s, probe with %s.%s" jp.j_inner_cls jp.j_ivar
          inner_field jp.j_ovar outer_field
  in
  Printf.sprintf "%s — est ~%.0f rows, cost ~%.0f (%s; nested loop ~%.0f)\n  outer: %s" strat
    jp.j_rows jp.j_cost
    (if jp.j_stats then "stats" else "heuristic")
    jp.j_nested_cost (explain jp.j_outer)
