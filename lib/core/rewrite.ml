(* Implicit-this rewriting.

   In class bodies the paper writes constraints and trigger conditions over
   bare member names ("constraint: qty >= 0"). At class-definition time we
   rewrite such occurrences to explicit [this.f] so the evaluator needs no
   scope rules: a bare identifier that names a field of the class (and is
   not shadowed by a parameter or loop variable) becomes a field access. *)

module Ast = Ode_lang.Ast

let rec expr ~fields ~bound (e : Ast.expr) : Ast.expr =
  let go e = expr ~fields ~bound e in
  match e with
  | Var x when (not (List.mem x bound)) && List.mem x fields -> Field (This, x)
  | Null | Int _ | Float _ | Bool _ | Str _ | Var _ | This -> e
  | Field (b, f) -> Field (go b, f)
  | Binop (op, a, b) -> Binop (op, go a, go b)
  | Unop (op, a) -> Unop (op, go a)
  | Call (recv, name, args) -> Call (Option.map go recv, name, List.map go args)
  | Is (a, c) -> Is (go a, c)
  | SetLit es -> SetLit (List.map go es)
  | ListLit es -> ListLit (List.map go es)

let rec stmt ~fields ~bound (s : Ast.stmt) : Ast.stmt =
  let ge e = expr ~fields ~bound e in
  let gs ss = stmts ~fields ~bound ss in
  match s with
  | SExpr e -> SExpr (ge e)
  | SPrint es -> SPrint (List.map ge es)
  | SAssign (x, e) when (not (List.mem x bound)) && List.mem x fields ->
      (* Assignment to a bare member name updates the object's field. *)
      SSetField (This, x, ge e)
  | SAssign (x, e) -> SAssign (x, ge e)
  | SSetField (o, f, e) -> SSetField (ge o, f, ge e)
  | SNew (tgt, c, inits) -> SNew (tgt, c, List.map (fun (f, e) -> (f, ge e)) inits)
  | SDelete e -> SDelete (ge e)
  | SForall q ->
      let bound' = q.q_var :: bound in
      SForall
        {
          q with
          q_suchthat = Option.map (expr ~fields ~bound:bound') q.q_suchthat;
          q_by = Option.map (fun (e, o) -> (expr ~fields ~bound:bound' e, o)) q.q_by;
          q_body = stmts ~fields ~bound:bound' q.q_body;
        }
  | SIf (c, t, e) -> SIf (ge c, gs t, gs e)
  | SNewVersion e -> SNewVersion (ge e)
  | SActivate (tgt, recv, name, args) -> SActivate (tgt, ge recv, name, List.map ge args)
  | SDeactivate e -> SDeactivate (ge e)
  | SInsert (e, f, obj) -> SInsert (ge e, f, ge obj)
  | SRemove (e, f, obj) -> SRemove (ge e, f, ge obj)
  | SReturn e -> SReturn (ge e)

and stmts ~fields ~bound ss =
  (* Assignments introduce shell variables; once assigned, a name shadows a
     field for the rest of the block. *)
  let rec go bound = function
    | [] -> []
    | s :: rest ->
        let s' = stmt ~fields ~bound s in
        let bound' =
          match s with
          | Ast.SAssign (x, _) when (not (List.mem x bound)) && List.mem x fields ->
              bound (* rewritten to a field update; binds nothing *)
          | Ast.SAssign (x, _) | Ast.SNew (Some x, _, _) -> x :: bound
          | _ -> bound
        in
        s' :: go bound' rest
  in
  go bound ss

(* Rewrite every schema-embedded expression of a class declaration. *)
let class_decl (d : Ast.class_decl) ~all_field_names : Ast.class_decl =
  let fields = all_field_names in
  {
    d with
    c_methods =
      List.map
        (fun (m : Ast.method_decl) ->
          let bound = List.map (fun (p : Ast.field_decl) -> p.fd_name) m.m_params in
          { m with m_body = expr ~fields ~bound m.m_body })
        d.c_methods;
    c_constraints =
      List.map
        (fun (k : Ast.constraint_decl) -> { k with k_expr = expr ~fields ~bound:[] k.k_expr })
        d.c_constraints;
    c_triggers =
      List.map
        (fun (g : Ast.trigger_decl) ->
          let bound = List.map (fun (p : Ast.field_decl) -> p.fd_name) g.g_params in
          {
            g with
            g_within = Option.map (expr ~fields ~bound) g.g_within;
            g_cond = expr ~fields ~bound g.g_cond;
            g_action = stmts ~fields ~bound g.g_action;
            g_timeout = stmts ~fields ~bound g.g_timeout;
          })
        d.c_triggers;
  }
