(** Logical export: serialize a whole database as a surface-language script
    that recreates it (schema, clusters, indexes, objects with their full
    version histories, named roots and trigger activations).

    Object identity is not preserved across a dump/load — objects get fresh
    ids — but all references are rewritten consistently, so the loaded
    database is isomorphic to the source. Trigger ids are likewise
    reassigned.

    Known limitations: version numbers are renumbered contiguously on load,
    so pinned version references ([Vref]) are only faithful when no version
    was ever deleted from the referenced object; timed-trigger activations
    (with a pending deadline) are not exported.

    Must be called outside a transaction. *)

val export : Types.db -> string
(** The full script. *)

val export_to_file : Types.db -> string -> unit

val import : Types.db -> string -> unit
(** Execute a script produced by {!export} against a fresh database
    (convenience wrapper over {!Shell.exec}). *)
