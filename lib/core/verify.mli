(** Offline integrity checking.

    Walks every persistent structure and cross-checks them: directory
    entries must resolve to live heap records, object headers must be
    consistent (known class, current version present, every listed version
    record stored, no orphan versions), secondary index entries must point
    at live objects whose field value matches the entry, every object must
    be covered by every applicable index, and trigger activations must
    reference live objects and declared triggers.

    Used by tests (especially crash-recovery tests, where it proves that
    replay reconstructed a coherent database) and available to operators via
    {!run}. Must be called outside a transaction. *)

val run : Types.db -> (unit, string list) result
(** [Ok ()] or the list of every inconsistency found. *)

val run_exn : Types.db -> unit
(** Raises [Failure] with a joined message on any inconsistency. *)
