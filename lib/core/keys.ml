(* Logical key namespace of the persistent store.

   Every durable datum lives under a tagged byte-string key; the WAL logs
   Put/Delete on these keys and recovery replays them, so adding state to
   the system never changes the recovery protocol. Tags:

     'H' ++ oid-key                object header (class, liveness, versions)
     'V' ++ oid-key ++ u32 ver     one version's field payload
     'R' ++ name                   named persistent root
     'T' ++ u32 tid                trigger activation record
     'C'                           the schema catalog
     'M'                           engine metadata (counters, logical clock)
     'S'                           planner statistics (cardinalities, histograms)
     'I' ++ u32 idx ++ valkey ++ oid-key   secondary index entry (routed to
                                           the index tree, not the KV)       *)

module Oid = Ode_model.Oid
module Key = Ode_util.Key
module Codec = Ode_util.Codec

let header oid = "H" ^ Oid.key oid
let header_prefix_class cls_id = "H" ^ Oid.key_class_prefix cls_id

let oid_of_header_key k =
  (* strip the tag byte *)
  Oid.of_key (String.sub k 1 (String.length k - 1))

let version oid ver =
  let b = Buffer.create 24 in
  Codec.put_raw b "V";
  Codec.put_raw b (Oid.key oid);
  Codec.put_raw b (Key.of_int ver);
  Buffer.contents b

let version_prefix oid = "V" ^ Oid.key oid
let root name = "R" ^ name

let trigger tid =
  let b = Buffer.create 12 in
  Codec.put_raw b "T";
  Codec.put_raw b (Key.of_int tid);
  Buffer.contents b

let trigger_prefix = "T"
let catalog = "C"
let meta = "M"
let stats = "S"

let index_entry ~idx_id ~valkey ~oid =
  let b = Buffer.create 32 in
  Codec.put_raw b "I";
  Codec.put_raw b (Key.of_int idx_id);
  Codec.put_raw b valkey;
  Codec.put_raw b (Oid.key oid);
  Buffer.contents b

let index_prefix ~idx_id = "I" ^ Key.of_int idx_id
let index_value_prefix ~idx_id ~valkey = "I" ^ Key.of_int idx_id ^ valkey

let is_index_key k = String.length k > 0 && k.[0] = 'I'

(* The trailing 16 bytes of an index entry are the oid key. *)
let oid_of_index_key k =
  let n = String.length k in
  if n < 16 then invalid_arg "keys: short index key";
  Oid.of_key (String.sub k (n - 16) 16)

(* Strip the routing tag: index entries are stored in the index tree without
   the leading 'I'. *)
let index_tree_key k = String.sub k 1 (String.length k - 1)
