module Ast = Ode_lang.Ast
module Value = Ode_model.Value
module Schema = Ode_model.Schema
module Catalog = Ode_model.Catalog
open Types

type t = {
  db : Database.t;
  env : Interp.env;
  mutable txn : txn option; (* explicit transaction opened with [begin;] *)
  print : string -> unit;
}

let create ?(print = print_string) db =
  Database.set_action_printer db print;
  { db; env = Interp.env ~print (); txn = None; print }

let database t = t.db

(* Run [f] in the explicit transaction if one is open, else autocommit. *)
let in_txn t f =
  match t.txn with
  | Some txn -> f txn
  | None -> Database.with_txn t.db f

let rec exec_top t (top : Ast.top) =
  match top with
  | TClass decl -> ignore (Database.define_class t.db decl)
  | TCreateCluster c -> Database.create_cluster t.db c
  | TCreateIndex (c, f) -> Database.create_index t.db ~cls:c ~field:f
  | TBegin -> (
      match t.txn with
      | Some _ -> failwith "a transaction is already open"
      | None -> t.txn <- Some (Database.begin_txn t.db))
  | TCommit -> (
      match t.txn with
      | None -> failwith "no open transaction"
      | Some txn ->
          t.txn <- None;
          Database.commit txn)
  | TAbort -> (
      match t.txn with
      | None -> failwith "no open transaction"
      | Some txn ->
          t.txn <- None;
          Database.abort txn)
  | TShowClasses ->
      List.iter
        (fun (c : Schema.cls) ->
          let parents =
            match c.parents with [] -> "" | ps -> " : " ^ String.concat ", " ps
          in
          let cluster = if c.cluster_created then "  [cluster]" else "" in
          t.print (Printf.sprintf "class %s%s%s\n" c.name parents cluster))
        (Catalog.all (Database.catalog t.db))
  | TShowStats ->
      t.print (Fmt.str "%a\n" Ode_util.Stats.pp (Ode_util.Stats.snapshot ()))
  | TVerify -> (
      if t.txn <> None then failwith "verify requires no open transaction"
      else
        match Verify.run t.db with
        | Ok () -> t.print "ok\n"
        | Error ps ->
            List.iter (fun p -> t.print ("problem: " ^ p ^ "\n")) ps;
            failwith (Printf.sprintf "integrity check found %d problems" (List.length ps)))
  | TDump ->
      if t.txn <> None then failwith "dump requires no open transaction"
      else t.print (Dump.export t.db)
  | TLoad path ->
      let source =
        try In_channel.with_open_text path In_channel.input_all
        with Sys_error msg -> failwith ("load: " ^ msg)
      in
      List.iter (exec_top t) (Ode_lang.Parser.program source)
  | TExplain q ->
      let text =
        in_txn t (fun _txn ->
            Query.explain t.db ~var:q.q_var ~cls:q.q_cls ~deep:q.q_deep ?suchthat:q.q_suchthat ())
      in
      t.print (text ^ "\n")
  | TAdvance e -> (
      let v = in_txn t (fun txn -> Interp.eval_expr txn t.env e) in
      match v with
      | Value.Int n ->
          if t.txn <> None then failwith "advance time requires no open transaction"
          else Database.advance_time t.db n
      | v -> failwith (Fmt.str "advance time expects an int, got %a" Value.pp v))
  | TStmt s -> in_txn t (fun txn -> Interp.exec_stmt txn t.env s)

let exec t source =
  let tops = Ode_lang.Parser.program source in
  List.iter (exec_top t) tops

let render_error = function
  | Ode_lang.Parser.Parse_error (msg, off) -> Printf.sprintf "parse error at %d: %s" off msg
  | Ode_lang.Lexer.Lex_error (msg, off) -> Printf.sprintf "lex error at %d: %s" off msg
  | Catalog.Schema_error msg -> "schema error: " ^ msg
  | Ode_model.Typecheck.Error msg -> "type error: " ^ msg
  | Ode_model.Eval.Error msg -> "error: " ^ msg
  | Store.Type_error msg -> "type error: " ^ msg
  | Store.No_cluster c -> Printf.sprintf "no cluster exists for class %s (use: create cluster %s;)" c c
  | Triggers.Trigger_error msg -> "trigger error: " ^ msg
  | Constraint_violation { cls; cname; oid } ->
      Fmt.str "constraint %s.%s violated by object %a (transaction aborted)" cls cname
        Ode_model.Oid.pp oid
  | Failure msg -> msg
  | e -> Printexc.to_string e

let exec_catching t source =
  match exec t source with
  | () -> Ok ()
  | exception (Constraint_violation _ as e) ->
      (* The commit already aborted the transaction. *)
      t.txn <- None;
      Error (render_error e)
  | exception e -> Error (render_error e)

let vars t = Interp.all_vars t.env
