module Ast = Ode_lang.Ast
module Value = Ode_model.Value
module Schema = Ode_model.Schema
module Catalog = Ode_model.Catalog
open Types

type t = {
  db : Database.t;
  env : Interp.env;
  mutable txn : txn option; (* explicit transaction opened with [begin;] *)
  mutable conflicted : string option;
      (* the last explicit transaction died of a write-write conflict (it
         was auto-aborted server-side). A later bare [commit;] re-reports
         the conflict instead of "no open transaction", so a client that
         retries a commit request keeps seeing the retryable error until
         it replays the transaction ([begin] clears the flag). *)
  mutable quit : bool;      (* set by the [.quit] dot command *)
  print : string -> unit;
}

let create ?(print = print_string) db =
  Database.set_action_printer db print;
  { db; env = Interp.env ~print (); txn = None; conflicted = None; quit = false; print }

let database t = t.db
let in_transaction t = t.txn <> None
let wants_quit t = t.quit

let rollback t =
  match t.txn with
  | None -> ()
  | Some txn ->
      t.txn <- None;
      Database.abort txn

(* Run [f] in the explicit transaction if one is open, else autocommit. *)
let in_txn t f =
  match t.txn with
  | Some txn -> f txn
  | None -> Database.with_txn t.db f

let rec exec_top t (top : Ast.top) =
  match top with
  | TClass decl -> ignore (Database.define_class t.db decl)
  | TCreateCluster c -> Database.create_cluster t.db c
  | TCreateIndex (c, f) -> Database.create_index t.db ~cls:c ~field:f
  | TBegin -> (
      match t.txn with
      | Some _ -> failwith "a transaction is already open"
      | None ->
          t.conflicted <- None;
          t.txn <- Some (Database.begin_txn t.db))
  | TCommit -> (
      match t.txn with
      | None -> (
          match t.conflicted with
          | Some msg -> raise (Txn_conflict msg)
          | None -> failwith "no open transaction")
      | Some txn ->
          t.txn <- None;
          Database.commit txn)
  | TAbort -> (
      match t.txn with
      | None ->
          (* Acknowledging a conflict-aborted transaction is not an error:
             the server already rolled it back. *)
          if t.conflicted <> None then t.conflicted <- None
          else failwith "no open transaction"
      | Some txn ->
          t.txn <- None;
          Database.abort txn)
  | TShowClasses ->
      List.iter
        (fun (c : Schema.cls) ->
          let parents =
            match c.parents with [] -> "" | ps -> " : " ^ String.concat ", " ps
          in
          let cluster = if c.cluster_created then "  [cluster]" else "" in
          t.print (Printf.sprintf "class %s%s%s\n" c.name parents cluster))
        (Catalog.all (Database.catalog t.db))
  | TShowStats ->
      t.print (Fmt.str "%a\n" Ode_util.Stats.pp (Ode_util.Stats.snapshot ()))
  | TVerify -> (
      if t.txn <> None then failwith "verify requires no open transaction"
      else
        match Verify.run t.db with
        | Ok () -> t.print "ok\n"
        | Error ps ->
            List.iter (fun p -> t.print ("problem: " ^ p ^ "\n")) ps;
            failwith (Printf.sprintf "integrity check found %d problems" (List.length ps)))
  | TDump ->
      if t.txn <> None then failwith "dump requires no open transaction"
      else t.print (Dump.export t.db)
  | TLoad path ->
      let source =
        try In_channel.with_open_text path In_channel.input_all
        with Sys_error msg -> failwith ("load: " ^ msg)
      in
      List.iter (exec_top t) (Ode_lang.Parser.program source)
  | TExplain q ->
      let text =
        in_txn t (fun _txn ->
            Query.explain t.db ~var:q.q_var ~cls:q.q_cls ~deep:q.q_deep ?suchthat:q.q_suchthat ())
      in
      t.print (text ^ "\n")
  | TAnalyze ->
      if t.txn <> None then failwith "analyze requires no open transaction"
      else t.print (Database.analyze t.db ^ "\n")
  | TAdvance e -> (
      let v = in_txn t (fun txn -> Interp.eval_expr txn t.env e) in
      match v with
      | Value.Int n ->
          if t.txn <> None then failwith "advance time requires no open transaction"
          else Database.advance_time t.db n
      | v -> failwith (Fmt.str "advance time expects an int, got %a" Value.pp v))
  | TStmt s -> in_txn t (fun txn -> Interp.exec_stmt txn t.env s)

let exec t source =
  let tops = Ode_lang.Parser.program source in
  List.iter (exec_top t) tops

let render_error = function
  | Ode_lang.Parser.Parse_error (msg, off) -> Printf.sprintf "parse error at %d: %s" off msg
  | Ode_lang.Lexer.Lex_error (msg, off) -> Printf.sprintf "lex error at %d: %s" off msg
  | Catalog.Schema_error msg -> "schema error: " ^ msg
  | Ode_model.Typecheck.Error msg -> "type error: " ^ msg
  | Ode_model.Eval.Error msg -> "error: " ^ msg
  | Store.Type_error msg -> "type error: " ^ msg
  | Store.No_cluster c -> Printf.sprintf "no cluster exists for class %s (use: create cluster %s;)" c c
  | Triggers.Trigger_error msg -> "trigger error: " ^ msg
  (* The prefix is load-bearing: clients recognize it as a retryable
     redirect and fail over to the primary. *)
  | Read_only_store -> "read-only replica: writes must go to the primary"
  (* This prefix is load-bearing too: the session layer upgrades it to the
     protocol's distinct retryable conflict reply. *)
  | Txn_conflict msg -> "conflict: " ^ msg
  | Constraint_violation { cls; cname; oid } ->
      Fmt.str "constraint %s.%s violated by object %a (transaction aborted)" cls cname
        Ode_model.Oid.pp oid
  | Failure msg -> msg
  (* e.g. "define_class cannot run inside a transaction" — DDL refused
     while any write transaction is open. *)
  | Invalid_argument msg -> msg
  | e -> Printexc.to_string e

let exec_catching t source =
  match exec t source with
  | () -> Ok ()
  | exception (Constraint_violation _ as e) ->
      (* The commit already aborted the transaction. *)
      t.txn <- None;
      Error (render_error e)
  | exception (Txn_conflict msg as e) ->
      (* First-committer-wins loser: the commit auto-aborted it. Remember
         the conflict so a retried bare [commit;] re-reports it. *)
      t.txn <- None;
      t.conflicted <- Some msg;
      Error (render_error e)
  | exception e -> Error (render_error e)

let vars t = Interp.all_vars t.env

(* Render one qualifying object as a row: its oid plus every field, the
   wire-protocol [Query] opcode's result shape. *)
let render_row txn oid =
  let fields = match Database.get txn oid with Some fs -> fs | None -> [] in
  Fmt.str "%a {%s}" Ode_model.Oid.pp oid
    (String.concat ", "
       (List.map (fun (f, v) -> f ^ " = " ^ Value.to_string v) fields))

(* -- sqlite3-style dot commands -------------------------------------------- *)

let dot_help =
  "dot commands:\n\
  \  .stats [reset]        engine counters (reset: zero them)\n\
  \  .recovery             durability/recovery counters\n\
  \  .durability [MODE]    show or set commit durability (full|group|async)\n\
  \  .sync                 fsync any pending deferred commits now\n\
  \  .metrics [reset]      latency histograms (p50/p95/p99/max per operation)\n\
  \  .metrics json         counters + gauges + histograms as one JSON object\n\
  \  .slow [K]             worst K retained slow-query entries (JSON lines)\n\
  \  .hist NAME            one histogram, machine-readable (raw ns)\n\
  \  .txns                 open transactions, snapshots and MVCC version backlog\n\
  \  .trace on|off         toggle the span tracer\n\
  \  .trace dump FILE      write buffered spans as Chrome trace-event JSON\n\
  \  .explain QUERY        access plan + cost estimates for a forall query\n\
  \  .profile QUERY        EXPLAIN ANALYZE: run QUERY, per-plan-node costs\n\
  \  .analyze              collect planner statistics (cardinalities, histograms)\n\
  \  .verify               run the structural integrity checker\n\
  \  .read FILE            execute a script file\n\
  \  .quit                 leave the shell"

(* [.explain]/[.profile] take a forall query with or without a body:
   `forall x in c suchthat e { ... }` parses as a statement, a bodiless
   `forall x in c suchthat e` via the `explain` production. *)
let parse_forall rest =
  let rest = String.trim rest in
  if rest = "" then failwith "expected a forall query (see .help)";
  let src = if String.length rest > 0 && rest.[String.length rest - 1] = ';' then rest else rest ^ ";" in
  let as_forall = function
    | [ Ast.TExplain f ] -> Some f
    | [ Ast.TStmt (Ast.SForall f) ] -> Some f
    | _ -> None
  in
  let try_parse s = match Ode_lang.Parser.program s with
    | tops -> as_forall tops
    | exception _ -> None
  in
  match try_parse src with
  | Some f -> f
  | None -> (
      match try_parse ("explain " ^ src) with
      | Some f -> f
      | None -> failwith "expected: forall x in C [suchthat e] [by e [desc]] [{ body }]")

(* A row-returning query (the server's [Query] opcode): a bodiless forall,
   each qualifying object rendered as one row. Runs inside the open explicit
   transaction if any, so a remote session sees its own uncommitted writes;
   with no explicit transaction it runs in a *detached* read-only txn
   ({!Database.with_read_txn}), which registers only an MVCC snapshot —
   that is what lets the server execute queries on reader domains in
   parallel with open write transactions. A predicate that turns out to
   write raises
   {!Types.Read_only_txn}, re-raised (not rendered) so the server can
   re-execute the request on the writer domain in a write transaction. *)
let query_rows ?(detached = true) t source =
  let run txn =
    let f = parse_forall source in
    if f.q_body <> [] then failwith "query takes a bodiless forall (use exec for loops)";
    List.rev
      (Query.fold t.db ~txn
         ~env:(Interp.all_vars t.env)
         ~var:f.q_var ~cls:f.q_cls ~deep:f.q_deep ?suchthat:f.q_suchthat ?by:f.q_by
         ~init:[]
         (fun acc oid -> render_row txn oid :: acc))
  in
  match
    match t.txn with
    | Some txn -> run txn
    | None -> if detached then Database.with_read_txn t.db run else Database.with_txn t.db run
  with
  | rows -> Ok rows
  | exception (Types.Read_only_txn as e) -> raise e
  | exception e -> Error (render_error e)

(* Run the profiled query with the forall body (if any) as the output node,
   mirroring Interp's SForall binding discipline. *)
let profile_query t (f : Ast.forall) =
  in_txn t (fun txn ->
      let outer = Interp.lookup_var t.env f.q_var in
      let body =
        if f.q_body = [] then fun _ -> ()
        else
          fun oid ->
            Interp.define_var t.env f.q_var (Value.Ref oid);
            Interp.exec_stmts txn t.env f.q_body
      in
      let pf =
        Query.profile t.db ~txn
          ~env:(Interp.all_vars t.env)
          ~var:f.q_var ~cls:f.q_cls ~deep:f.q_deep ?suchthat:f.q_suchthat ?by:f.q_by ~body ()
      in
      if f.q_body <> [] then begin
        Interp.undefine_var t.env f.q_var;
        match outer with Some v -> Interp.define_var t.env f.q_var v | None -> ()
      end;
      Query.profile_to_string pf)

let dot_command t line =
  let line = String.trim line in
  if String.length line = 0 || line.[0] <> '.' then None
  else
    let cmd, rest =
      match String.index_opt line ' ' with
      | None -> (line, "")
      | Some i ->
          (String.sub line 0 i, String.trim (String.sub line i (String.length line - i)))
    in
    let run () =
      match (cmd, rest) with
      | ".help", _ -> dot_help
      | ".stats", "" -> Fmt.str "%a" Ode_util.Stats.pp (Ode_util.Stats.snapshot ())
      | ".stats", "reset" ->
          Ode_util.Stats.reset ();
          "counters reset"
      | ".recovery", "" -> Fmt.str "%a" Ode_util.Stats.pp_recovery (Ode_util.Stats.snapshot ())
      | ".durability", "" ->
          Printf.sprintf "%s (%d pending commits)"
            (Database.durability_name (Database.durability t.db))
            (Database.pending_commits t.db)
      | ".durability", mode -> (
          match Database.durability_of_string mode with
          | Some d ->
              (* Leaving a deferred mode must not strand pending commits. *)
              if d = Database.Full then Database.sync_commits t.db;
              Database.set_durability t.db d;
              "durability " ^ mode
          | None -> Printf.sprintf "unknown durability %S (full|group|async)" mode)
      | ".sync", _ ->
          let n = Database.pending_commits t.db in
          Database.sync_commits t.db;
          Printf.sprintf "synced (%d commits acknowledged)" n
      | ".metrics", "" -> String.trim (Ode_util.Histogram.summary ())
      | ".metrics", "reset" ->
          (* Atomic per histogram: each snapshot+zero happens under that
             histogram's mutex, so an observe racing the reset from a
             reader domain is never lost or double-counted. *)
          let drained = Ode_util.Histogram.rows ~reset:true () in
          let n = List.fold_left (fun a (r : Ode_util.Histogram.row) -> a + r.r_count) 0 drained in
          Printf.sprintf "histograms reset (%d observations drained)" n
      | ".metrics", "json" -> Ode_util.Metrics.json ()
      | ".slow", rest -> (
          let k =
            if rest = "" then 10 else match int_of_string_opt rest with Some k -> max 1 k | None -> -1
          in
          if k < 0 then ".slow takes an entry count"
          else if not (Ode_util.Slowlog.armed ()) then
            "slow-query log disarmed (start the server with --slow-query-ms, or arm embedded via Slowlog.configure)"
          else
            match Ode_util.Slowlog.worst k with
            | [] -> "no slow queries retained"
            | lines -> String.concat "\n" lines)
      | ".txns", _ ->
          let txns = Database.open_txns t.db in
          let b = Buffer.create 128 in
          Printf.bprintf b "open txns %d  snapshots %d  oldest_snapshot %s"
            (List.length txns)
            (Database.live_snapshots t.db)
            (match Database.oldest_snapshot t.db with
            | Some ts -> string_of_int ts
            | None -> "-");
          List.iter
            (fun (xid, read_ts) -> Printf.bprintf b "\n  xid %d read_ts %d" xid read_ts)
            txns;
          Printf.bprintf b "\nchains %d  dead_versions %d  reclaimed %d"
            (Database.mvcc_chains t.db)
            (Database.mvcc_dead_versions t.db)
            (Database.mvcc_reclaimed t.db);
          Buffer.contents b
      | ".trace", "on" ->
          Ode_util.Trace.set_enabled true;
          "tracing on"
      | ".trace", "off" ->
          Ode_util.Trace.set_enabled false;
          "tracing off"
      | ".trace", "" ->
          Printf.sprintf "tracing %s; %d spans buffered (%d recorded)"
            (if Ode_util.Trace.enabled () then "on" else "off")
            (List.length (Ode_util.Trace.spans ()))
            (Ode_util.Trace.total_recorded ())
      | ".trace", r when String.length r >= 4 && String.sub r 0 4 = "dump" ->
          let file = String.trim (String.sub r 4 (String.length r - 4)) in
          if file = "" then ".trace dump needs a file name"
          else begin
            Ode_util.Trace.dump file;
            Printf.sprintf "wrote %d spans to %s" (List.length (Ode_util.Trace.spans ())) file
          end
      | ".quit", _ ->
          t.quit <- true;
          ""
      | ".read", "" -> ".read needs a file name"
      | ".read", path -> (
          let source =
            try In_channel.with_open_text path In_channel.input_all
            with Sys_error msg -> failwith ("read: " ^ msg)
          in
          match exec_catching t source with Ok () -> "" | Error msg -> "error: " ^ msg)
      | ".hist", "" -> ".hist needs a histogram name (see .metrics)"
      | ".hist", name -> (
          let module H = Ode_util.Histogram in
          match H.find name with
          | None -> Printf.sprintf "no histogram %S" name
          | Some h ->
              Printf.sprintf "%s count %d p50 %d p95 %d p99 %d max %d mean %d" name
                (H.count h) (H.percentile h 50.) (H.percentile h 95.) (H.percentile h 99.)
                (H.max_ns h)
                (int_of_float (H.mean_ns h)))
      | ".verify", "" -> (
          match Verify.run t.db with
          | Ok () -> "ok"
          | Error ps -> "verify failed: " ^ String.concat "; " ps)
      | ".explain", q -> (
          let f = parse_forall q in
          match Interp.fusable_join f with
          | Some iq ->
              in_txn t (fun _txn ->
                  Query.explain_join t.db
                    ~env:(Interp.all_vars t.env)
                    ~outer:(f.q_var, f.q_cls, f.q_deep)
                    ~inner:(iq.q_var, iq.q_cls, iq.q_deep)
                    ?outer_suchthat:f.q_suchthat ?inner_suchthat:iq.q_suchthat ())
          | None ->
              in_txn t (fun _txn ->
                  Query.explain t.db
                    ~env:(Interp.all_vars t.env)
                    ~var:f.q_var ~cls:f.q_cls ~deep:f.q_deep ?suchthat:f.q_suchthat ()))
      | ".profile", q -> profile_query t (parse_forall q)
      | ".analyze", "" ->
          if t.txn <> None then failwith "analyze requires no open transaction"
          else Database.analyze t.db
      | ".analyze", "status" -> Database.stats_summary t.db
      | _ -> Printf.sprintf "unknown command %s\n%s" cmd dot_help
    in
    Some (match run () with out -> out | exception e -> render_error e)
