(** Statement interpreter for the surface language.

    Executes statement lists (shell input, trigger actions, example
    programs) within a given transaction. Transaction control itself lives
    above (see {!Shell} and {!Database.with_txn}); a statement list can
    create, update and delete objects, iterate with [forall], navigate
    versions, and activate or deactivate triggers. *)

open Types

type env

val env : ?print:(string -> unit) -> ?this:Ode_model.Value.t -> unit -> env
(** [print] receives the output of [print] statements (default: stdout);
    [this] is bound inside trigger actions. *)

val define_var : env -> string -> Ode_model.Value.t -> unit

val undefine_var : env -> string -> unit
(** Drop a binding (restoring a shadowed outer one is the caller's job). *)

val lookup_var : env -> string -> Ode_model.Value.t option
val all_vars : env -> (string * Ode_model.Value.t) list

exception Returned of Ode_model.Value.t
(** Raised by a top-level [return e;] — callers that expect a value catch
    it. *)

val fusable_join : Ode_lang.Ast.forall -> Ode_lang.Ast.forall option
(** When [q] is a two-extent nested loop the join planner may fuse —
    exactly one nested [forall] as the body, no [by] clauses, and a
    side-effect-free inner body that reassigns no variable the predicates
    read — returns the inner loop. {!exec_stmt} routes such loops through
    {!Query.run_join}; the shell's [.explain] uses the same gate so plans
    it prints are the plans that run. *)

val exec_stmts : txn -> env -> Ode_lang.Ast.stmt list -> unit
val exec_stmt : txn -> env -> Ode_lang.Ast.stmt -> unit

val eval_expr : txn -> env -> Ode_lang.Ast.expr -> Ode_model.Value.t
