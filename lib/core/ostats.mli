(** Planner statistics: per-extent cardinalities and per-index equi-depth
    key histograms, persisted under the ['S'] key as one encoded snapshot
    written through an ordinary transaction (so WAL, recovery, replication
    and dump all carry it). Cardinalities are maintained incrementally from
    [Store.apply_op]; histograms are rebuilt only by analyze, and [stale]
    tells the planner when to stop trusting them. *)

val fresh : unit -> Types.ostats
(** Empty statistics for a newly constructed database handle. *)

val is_header_key : string -> bool

val note_create : Types.db -> string -> unit
(** An object header was created (applied commit/recovery/replication):
    bump its class cardinality and the mods-since-analyze tally. *)

val note_delete : Types.db -> string -> unit

val install : Types.db -> string -> unit
(** Decode a persisted snapshot into [db.stats] (resets mods).
    @raise Ode_util.Codec.Corrupt on a malformed payload. *)

val compute : Types.db -> string
(** Full committed-state scan: exact per-class cardinalities plus one
    equi-depth histogram per index, returned as the encoded snapshot to
    write under [Keys.stats]. *)

val analyzed : Types.db -> bool

val stale : Types.db -> bool
(** True when no analyze has run or enough header creates/deletes have
    accumulated since the last one that the histograms are untrustworthy. *)

val card : Types.db -> int -> int option
(** Live cardinality estimate for a class id. *)

val idx_stat : Types.db -> int -> Types.idx_stat option
(** Key-distribution statistics for an index id (analyze-time snapshot). *)

val mods : Types.db -> int
val base : Types.db -> int

val describe : Types.db -> string
(** One-line human summary for the shell. *)
