(* Internal shared state of the database engine.

   Exposed record fields are an implementation detail of the [Ode] library;
   external code should use the {!Database}, {!Txn}, {!Store} and {!Query}
   interfaces. *)

module Oid = Ode_model.Oid
module Value = Ode_model.Value

(* A pending logical write: last-wins per key within one transaction. *)
type op = Put of string | Del

(* Decoded object header as stored under the 'H' key. [hversions] is kept
   newest-first so allocating the next version number is O(1). *)
type header = { hcls : int; hcurrent : int; hversions : int list }

(* An entry of the decoded-object cache: either a decoded header or the
   decoded field list of one version. Both are immutable-by-convention —
   readers never mutate what the cache hands out. *)
type cached = Cheader of header | Cfields of (string * Value.t) list

type activation = {
  tid : int;
  aoid : Oid.t;                  (* object the trigger is attached to *)
  tcls : string;                 (* class declaring the trigger *)
  tname : string;
  targs : Value.t list;
  perpetual : bool;
  deadline : int option;         (* logical-clock deadline of a timed trigger *)
  mutable active : bool;
}

type firing_kind = Fired | Timed_out

type firing = { f_act : activation; f_kind : firing_kind }

type meta = { mutable next_tid : int; mutable clock : int }

(* One index's key-distribution statistics as of the last analyze. *)
type idx_stat = {
  is_total : int;                          (* entries at analyze time *)
  is_distinct : int;                       (* distinct keys at analyze time *)
  is_hist : Ode_util.Histogram.Dist.t;     (* equi-depth key histogram *)
}

(* Planner statistics: per-extent cardinality and per-index key
   distributions. Histograms and the [st_base] snapshot are rebuilt only
   by `analyze` (full scan); the cardinality counters and [st_mods] are
   maintained incrementally by [Store.apply_op] on every committed /
   recovered / replicated header create+delete, so the planner's row
   estimates track the live database and staleness is measurable as
   mods-since-analyze against the analyze-time base. Mutations happen
   under the engine's exclusive latch but reads come from reader
   domains, so [st_mu] guards the hashtables (cheap: one lock per plan,
   one per header apply). *)
type ostats = {
  mutable st_analyzed : bool;              (* an analyze has populated this *)
  mutable st_base : int;                   (* live objects at analyze time *)
  mutable st_mods : int;                   (* header creates+deletes since *)
  st_cards : (int, int) Hashtbl.t;         (* class id -> live object count *)
  st_idx : (int, idx_stat) Hashtbl.t;      (* idx id -> key distribution *)
  st_mu : Mutex.t;
}

(* When a commit becomes durable:
   - [Full]: every commit fsyncs the WAL before it is acknowledged (eager,
     the historical behavior).
   - [Group]: commits apply in memory and stay *pending* until a shared
     [Wal.sync] acknowledges the whole batch — one fsync for many commits.
     The serving layer syncs once per scheduler tick, before replying.
   - [Async]: like [Group] but nothing waits for the sync; durability
     arrives at the next checkpoint, page write-back, or explicit sync.
   Crash safety is identical in all modes (write-ahead is enforced by the
   buffer pool's pre-write hook); what varies is whether an *acknowledged*
   commit can be lost: never under Full/Group, bounded under Async. *)
type durability = Full | Group | Async

type txn = {
  xid : int;
  tdb : db;
  tro : bool;                               (* detached read-only txn: never
                                               registers as a writer, never
                                               allocates an xid; any write
                                               attempt raises Read_only_txn *)
  read_ts : int;                            (* snapshot: commit LSN at begin *)
  mutable snap : int;                       (* Mvcc snapshot token; 0 = released *)
  writes : (string, op) Hashtbl.t;          (* logical key -> final state *)
  mutable created : Oid.t list;             (* reverse creation order *)
  touched : (Oid.t, unit) Hashtbl.t;        (* objects written (for constraints/triggers) *)
  mutable tstate : [ `Active | `Committed | `Aborted ];
  mutable catalog_dirty : bool;             (* DDL or oid allocation happened *)
  mutable meta_dirty : bool;
}

and db = {
  dbdir : string option;                    (* None = in-memory *)
  kv_heap : Ode_storage.Heap.t;             (* record payloads *)
  kv_dir : Ode_index.Bptree.t;              (* logical key -> heap rid *)
  idx : Ode_index.Bptree.t;                 (* secondary index entries *)
  wal : Ode_storage.Wal.t;
  mutable catalog : Ode_model.Catalog.t;
  mutable meta : meta;
  stats : ostats;                           (* planner statistics ('S' key) *)
  mutable next_xid : int;
  mutable active : txn option;              (* most recently begun write txn —
                                               a compatibility default for
                                               embedded callers that pass no
                                               txn; concurrent transactions
                                               live in [wtxns] *)
  wtxns : (int, txn) Hashtbl.t;             (* xid -> every open write txn *)
  mvcc : Mvcc.t;                            (* version chains + snapshots *)
  latch : Ode_util.Rwlock.t;                (* engine latch: readers share it
                                               per request; mutations of the
                                               committed structures (commit
                                               apply, checkpoint, DDL,
                                               replication apply) take it
                                               exclusively — see Txn.with_excl *)
  mutable in_excl : bool;                   (* re-entrancy flag for the
                                               exclusive side; only ever
                                               touched by the single
                                               mutating domain *)
  activations : (int, activation) Hashtbl.t;
  by_oid : (Oid.t, int list) Hashtbl.t;     (* object -> activation tids *)
  action_queue : firing Queue.t;            (* weakly-coupled trigger actions *)
  mutable draining : bool;
  mutable wal_auto_checkpoint : int;        (* bytes; checkpoint when exceeded *)
  mutable durability : durability;          (* when commits fsync (see above) *)
  mutable read_only : bool;                 (* replica mode: reject local writes *)
  ocache : (string, cached) Ode_util.Slru.t; (* decoded objects by logical key,
                                                sharded for concurrent reader
                                                domains; capacity 0 disables *)
  mutable closed : bool;
  mutable printer : string -> unit;         (* trigger-action [print] output *)
}

exception Constraint_violation of { cls : string; cname : string; oid : Oid.t }
exception Txn_aborted of string

exception Txn_conflict of string
(* First-committer-wins: another transaction committed a write to a key this
   one also wrote, after this one's snapshot. The transaction has already
   been aborted; the error is retryable (the server surfaces it as the
   protocol's Err_conflict so clients re-run under their retry budget). *)

exception No_active_txn
exception Db_closed

exception Read_only_store
(* The database is a replication standby: local writes are rejected (the
   rendered message is the client's retryable redirect to the primary). *)

exception Read_only_txn
(* A write reached a detached read-only transaction (Txn.begin_read). The
   guard fires before any shared state is touched, so the server can
   re-route the request to the writer domain and re-execute it there. *)
