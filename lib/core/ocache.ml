(* Decoded-object cache.

   A sharded LRU over logical KV keys ('H' header keys and 'V' version keys)
   that holds the *decoded* representation, so repeated predicate evaluation
   over the same extent skips the B+tree descent, heap fetch and field
   decode. Shards (each its own LRU + mutex, see {!Ode_util.Slru}) let the
   server's reader domains probe and fill the cache concurrently.

   Coherence contract:
   - Only committed state is ever cached. Readers consult the active
     transaction's write overlay first and never insert overlay data.
   - [invalidate] is called from the committed-write choke point
     ([Kv.put]/[Kv.delete]) which covers commit-apply, recovery replay and
     every direct caller. Committed writes happen only on the writer domain
     while no reader holds the engine's shared lock, so readers never
     observe a stale entry.
   - [clear] wipes the cache wholesale on recovery/reopen so a pre-crash
     entry can never be served against a replayed store. *)

open Types
module Slru = Ode_util.Slru
module Stats = Ode_util.Stats

let enabled db = Slru.capacity db.ocache > 0

let find db key =
  if not (enabled db) then None
  else
    match Slru.find db.ocache key with
    | Some _ as hit ->
        Stats.incr_obj_cache_hits ();
        hit
    | None ->
        Stats.incr_obj_cache_misses ();
        None

let add db key v = if enabled db then Slru.add db.ocache key v

let invalidate db key =
  if enabled db && Slru.remove db.ocache key then Stats.incr_obj_cache_invalidations ()

let clear db = Slru.clear db.ocache
let resident db = Slru.length db.ocache
