(* Decoded-object cache.

   An LRU over logical KV keys ('H' header keys and 'V' version keys) that
   holds the *decoded* representation, so repeated predicate evaluation over
   the same extent skips the B+tree descent, heap fetch and field decode.

   Coherence contract:
   - Only committed state is ever cached. Readers consult the active
     transaction's write overlay first and never insert overlay data.
   - [invalidate] is called from the committed-write choke point
     ([Kv.put]/[Kv.delete]) which covers commit-apply, recovery replay and
     every direct caller.
   - [clear] wipes the cache wholesale on recovery/reopen so a pre-crash
     entry can never be served against a replayed store. *)

open Types
module Lru = Ode_util.Lru
module Stats = Ode_util.Stats

let enabled db = Lru.capacity db.ocache > 0

let find db key =
  if not (enabled db) then None
  else
    match Lru.find db.ocache key with
    | Some _ as hit ->
        Stats.incr_obj_cache_hits ();
        hit
    | None ->
        Stats.incr_obj_cache_misses ();
        None

let add db key v =
  if enabled db then begin
    Lru.add db.ocache key v;
    while Lru.length db.ocache > Lru.capacity db.ocache do
      ignore (Lru.evict db.ocache (fun _ _ -> true))
    done
  end

let invalidate db key =
  if enabled db && Lru.mem db.ocache key then begin
    Lru.remove db.ocache key;
    Stats.incr_obj_cache_invalidations ()
  end

let clear db = Lru.clear db.ocache
