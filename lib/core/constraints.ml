(* Constraint checking (paper §5).

   Constraints are boolean conditions attached to classes; an object must
   satisfy every constraint of its class, including inherited ones — this is
   what makes constraint-based specialization work (a [female : person]
   subclass adds [sex == "f"]). Checks run at transaction commit over every
   object the transaction wrote; a violation aborts the transaction
   ("Violation of a constraint will cause the transaction ... to be aborted
   and rolled back"). *)

module Value = Ode_model.Value
module Schema = Ode_model.Schema
module Catalog = Ode_model.Catalog
module Eval = Ode_model.Eval
open Types

let check_object db txn oid =
  match Store.get_header db txn oid with
  | None -> () (* deleted in this transaction: nothing to satisfy *)
  | Some h -> (
      match Catalog.find_by_id db.catalog h.Store.hcls with
      | None -> ()
      | Some cls ->
          let hooks = Runtime.hooks db txn in
          List.iter
            (fun (k : Schema.constr) ->
              Ode_util.Stats.incr_constraints_checked ();
              let ok =
                match Eval.eval hooks ~vars:[] ~this:(Some (Value.Ref oid)) k.kexpr with
                | v -> Eval.truthy v
                | exception Eval.Error _ -> false
              in
              if not ok then
                raise (Constraint_violation { cls = cls.Schema.name; cname = k.kname; oid }))
            (Catalog.all_constraints db.catalog cls))

let check_txn txn =
  Ode_util.Trace.with_span ~cat:"constraints"
    ~args:[ ("touched", string_of_int (Hashtbl.length txn.touched)) ]
    "constraints.check" (fun () ->
      Hashtbl.iter (fun oid () -> check_object txn.tdb (Some txn) oid) txn.touched)
