(** Object storage through the transactional overlay.

    All reads go write-set-first, so a transaction sees its own effects; all
    mutations are buffered in the write set and hit the disk structures only
    at commit (deferred apply). {!apply_op} is the single routine that moves
    a logical operation into the committed structures — commit and crash
    recovery both call it, which is what makes recovery trivially correct.

    Objects: a header record tracks the class, the current version number
    and the version list; each version's fields are a separate record. An
    unversioned object simply has one version, 0 (persistence and versioning
    compose, paper §4: "all persistent objects can have versions"). *)

open Types

exception Type_error of string
exception No_cluster of string
(** pnew into a class whose cluster was never created (paper §2.5). *)

type header = Types.header = {
  hcls : int;
  hcurrent : int;
  hversions : int list;  (** newest-first *)
}

val decode_header : string -> header
(** Used by the integrity checker. *)

(** {1 Raw overlay access} *)

val read_ts_of : txn option -> int
(** The snapshot a read resolves against: the transaction's read timestamp,
    or [max_int] ("latest committed") when no transaction is given. *)

val read : db -> txn option -> string -> string option
val write : txn -> string -> string -> unit
val remove : txn -> string -> unit

(** {1 Reading objects} *)

(** Reads consult the write overlay first, then the MVCC version chains
    (a key committed past the transaction's snapshot resolves to the
    version the snapshot can see, bypassing the cache), then the
    decoded-object cache ({!Ocache}), then the committed KV (populating
    the cache on a miss — only ever with latest committed state). *)

val get_header : db -> txn option -> Ode_model.Oid.t -> header option
val exists : db -> txn option -> Ode_model.Oid.t -> bool
val class_of : db -> Ode_model.Oid.t -> Ode_model.Schema.cls option
(** From the oid alone; does not check liveness. *)

val get_fields : db -> txn option -> Ode_model.Oid.t -> (string * Ode_model.Value.t) list option
(** Fields of the current version. *)

val get_fields_v :
  db -> txn option -> Ode_model.Oid.vref -> (string * Ode_model.Value.t) list option

val get_field : db -> txn option -> Ode_model.Oid.t -> string -> Ode_model.Value.t option
val get_field_v : db -> txn option -> Ode_model.Oid.vref -> string -> Ode_model.Value.t option

(** {1 Mutating objects (buffered in the transaction)} *)

val create : txn -> Ode_model.Schema.cls -> (string * Ode_model.Value.t) list -> Ode_model.Oid.t
(** Allocate an oid, fill unspecified fields with type defaults, check value
    conformance (raises {!Type_error} on mismatch, {!No_cluster} if the
    cluster does not exist). *)

val update_fields : txn -> Ode_model.Oid.t -> (string * Ode_model.Value.t) list -> unit
(** Partial update of the current version. *)

val delete_object : txn -> Ode_model.Oid.t -> unit
(** Remove the object and all its versions (pdelete). *)

val new_version : txn -> Ode_model.Oid.t -> int
(** Copy the current version as a new one, which becomes current; returns
    the new version number. *)

val delete_version : txn -> Ode_model.Oid.vref -> unit
(** Delete one version. Deleting the current version promotes its
    predecessor; deleting the last remaining version deletes the object. *)

(** {1 Index plumbing} *)

val applicable_indexes : db -> Ode_model.Schema.cls -> (int * string) list
(** (index id, field name) pairs whose declaring class is an ancestor. *)

val index_ids : db -> cls:string -> field:string -> int option

(** {1 Commit/recovery} *)

val apply_op : db -> string -> op -> unit
(** Apply one logical operation to the committed structures (KV or index
    tree). Idempotent. *)

val committed_image : db -> string -> string option
(** The key's current committed value (index entries: [Some ""] when the
    entry exists) — the pre-image the MVCC layer records before a commit
    overwrites it. Call under the exclusive latch. *)
