(** The ODE database: the top-level façade.

    A database lives in a directory (four files: object heap, key directory,
    secondary indexes, write-ahead log) or entirely in memory. Opening a
    directory replays the committed tail of the WAL, so a crash at any point
    loses at most the uncommitted transaction (see DESIGN.md).

    Typical EDSL use:
    {[
      let db = Database.open_ "mydb" in
      ignore (Database.define db "class item { name: string; qty: int; };");
      Database.create_cluster db "item";
      Database.with_txn db (fun txn ->
          let oid = Database.pnew txn "item" [ ("name", Str "bolt"); ("qty", Int 40) ] in
          Database.set_root txn "first" (Ref oid));
      Database.close db
    ]} *)

open Types

type t = db
(** Schema errors are reported as {!Ode_model.Catalog.Schema_error}. *)

(** {1 Lifecycle} *)

val open_ :
  ?pool_pages:int ->
  ?wal_checkpoint_bytes:int ->
  ?object_cache:int ->
  ?durability:Types.durability ->
  string ->
  t
(** Open (creating if needed) the database stored in a directory.
    [object_cache] sizes the decoded-object cache in entries (decoded
    headers and version field lists); 0 disables it. Default 4096.
    [durability] (default [Full]) picks when commits fsync — see
    {!durability} below. *)

val open_in_memory : ?pool_pages:int -> ?object_cache:int -> ?durability:Types.durability -> unit -> t
(** A volatile database: same engine, same WAL protocol, no files. *)

val close : t -> unit
(** Checkpoint and release. Aborts every open write transaction. *)

val crash : t -> unit
(** Simulate process death: release the file descriptors without
    checkpointing or flushing anything. Whatever reached the files is what
    recovery sees on the next {!open_}. For crash tests. *)

val checkpoint : t -> unit

(** {1 Schema (DDL — outside transactions, autocommitted)} *)

val define_class : t -> Ode_lang.Ast.class_decl -> Ode_model.Schema.cls
(** Typechecks the declaration (constraints, trigger conditions, method
    bodies), rewrites bare member names to [this.f], registers and persists
    it. *)

val define : t -> string -> Ode_model.Schema.cls list
(** Parse and define class declarations from source text. *)

val create_cluster : t -> string -> unit
(** Create the type extent; required before [pnew] (paper §2.5). *)

val create_index : t -> cls:string -> field:string -> unit
(** Create a secondary index and backfill it from existing objects. *)

val catalog : t -> Ode_model.Catalog.t

(** {1 Planner statistics} *)

val analyze : t -> string
(** Collect planner statistics: one full committed-state scan producing
    per-extent cardinalities and per-index equi-depth key histograms,
    persisted under the ['S'] key through an ordinary transaction (WAL,
    recovery, replication and dump all carry it). DDL-like: must run
    outside transactions. Returns a one-line human summary. *)

val stats_summary : t -> string
val stats_analyzed : t -> bool
val stats_stale : t -> bool
(** Whether the planner currently distrusts the histograms (no analyze
    yet, or too many header creates/deletes since the last one). *)

(** {1 Transactions} *)

val with_txn : t -> (txn -> 'a) -> 'a
(** Run, commit, then execute any trigger actions fired by the commit, each
    as its own transaction (weak coupling, paper §6). On exception the
    transaction is aborted and the exception re-raised. *)

val with_read_txn : t -> (txn -> 'a) -> 'a
(** Run [f] inside a detached read-only transaction ({!Txn.begin_read}):
    it registers an MVCC snapshot but never a write set or an xid, so any
    number run concurrently on reader domains alongside open write
    transactions, each observing a stable snapshot. A write attempt inside
    [f] raises {!Types.Read_only_txn} before touching shared state. *)

val begin_txn : t -> txn
(** Open an explicit read-write transaction. Any number may be open at
    once (MVCC snapshot isolation); a commit that loses first-committer-wins
    conflict detection raises the retryable {!Types.Txn_conflict} after
    auto-aborting. *)

val commit : txn -> unit
(** Commit and drain trigger actions. Under [Group]/[Async] durability the
    commit is prepared (logged, applied) but its fsync is deferred to the
    next {!sync_commits} / checkpoint — see {!durability}. *)

val commit_deferred : txn -> unit
(** Commit with durability deferred regardless of mode: logged and applied,
    pending until {!sync_commits}. Callers that acknowledge commits to the
    outside world (the network server) must call {!sync_commits} first. *)

val abort : txn -> unit

(** {1 Durability}

    When a commit's WAL records are fsynced: [Full] — at every commit,
    before it returns (eager, the default); [Group] — deferred until a
    shared {!sync_commits}, so one fsync acknowledges a whole batch of
    commits (the serving layer syncs once per scheduler tick); [Async] —
    deferred with nobody waiting: durability arrives at the next
    checkpoint, dirty-page write-back, or explicit {!sync_commits}.

    Every mode is equally crash-{e consistent}: recovery replays exactly the
    transactions whose commit records reached the log, and the buffer pool
    forces the log before writing any dirty page (write-ahead), so applied
    effects can never outrun their records. The modes differ only in
    whether an {e acknowledged} commit can be lost: never under [Full] and
    [Group] (acks wait for the fsync), bounded by the deferred window under
    [Async]. *)

type durability = Types.durability = Full | Group | Async

val durability : t -> durability
val set_durability : t -> durability -> unit

val sync_commits : t -> unit
(** One [Wal.sync] acknowledging every pending deferred commit. No-op when
    nothing is pending. *)

val pending_commits : t -> int
(** Commits prepared but not yet made durable by a sync. *)

val pool_resident : t -> int
(** Pages currently cached across the three buffer pools (heap, directory
    B+tree, index B+tree) — a monitoring gauge. *)

val ocache_resident : t -> int
(** Decoded objects currently held by the object cache. *)

(** {1 Concurrency and MVCC introspection} *)

val latch : t -> Ode_util.Rwlock.t
(** The engine latch. Reader domains hold the shared side for the duration
    of a request; the engine itself takes the exclusive side around commit
    apply, checkpoints, DDL and replication apply ({!Txn.with_excl}). *)

val open_txns : t -> (int * int) list
(** Open read-write transactions as [(xid, read_ts)] pairs, oldest xid
    first — the shell's [.txns] report. *)

val oldest_snapshot : t -> int option
(** Read timestamp of the oldest live snapshot (the MVCC GC horizon), or
    [None] when no snapshot is registered. *)

val live_snapshots : t -> int
(** Registered snapshots: open write transactions plus in-flight detached
    read transactions. *)

val mvcc_chains : t -> int
(** Keys currently carrying a version chain. *)

val mvcc_dead_versions : t -> int
(** Superseded versions retained for live snapshots — the GC backlog. *)

val mvcc_reclaimed : t -> int
(** Versions reclaimed by the GC since open (monotonic). *)

val durability_name : durability -> string
val durability_of_string : string -> durability option
(** ["full"] / ["group"] / ["async"]. *)

(** {1 Replication}

    Commit LSNs number the database's committed transactions from the
    beginning of time (see [Wal]); the serving layer tags every response
    with one, ships post-fsync WAL batches to standbys, and a standby
    replays them here. *)

val lsn : t -> int
(** LSN of the last committed (applied) transaction. On a standby this is
    the replication apply position. *)

val durable_lsn : t -> int
(** LSN covered by the last WAL fsync ([lsn] minus any pending deferred
    commits). *)

val read_only : t -> bool

val set_read_only : t -> bool -> unit
(** A read-only database (a replication standby) rejects local writes with
    {!Types.Read_only_store} — DDL and clock advancement immediately,
    writing transactions at commit; read-only transactions still commit.
    Promotion flips it back. *)

val dir : t -> string option
(** The backing directory ([None] for in-memory databases). *)

val wal_tail : t -> lsn:int -> string option
(** The raw WAL frames a replica at [lsn] still needs ([Wal.tail_from]);
    [None] when the log was checkpointed past that point — ship a snapshot
    instead. *)

val set_wal_observer :
  t -> (data:string -> from_lsn:int -> to_lsn:int -> unit) option -> unit
(** Install the post-fsync batch observer ([Wal.set_on_sync]): the serving
    layer's replication feeder. The callback runs inside commit paths and
    must only enqueue. *)

val apply_replicated : t -> Ode_storage.Wal.record list -> unit
(** Standby redo: append a shipped batch to the local WAL, fsync it
    (write-ahead — a standby crash mid-apply replays on reopen), apply the
    committed operations through the same path recovery uses (recording
    pre-images into the MVCC version chains under the primary's commit
    timestamps, so snapshots held on this standby stay stable), refresh the
    decoded schema/trigger/clock mirrors if the batch touched them, and
    checkpoint when the primary's checkpoint record says to (or the local
    log outgrows its bound). The local commit LSN advances through the
    appended records exactly as the primary's did. *)

(** {1 Objects (within a transaction)} *)

val pnew : txn -> string -> (string * Ode_model.Value.t) list -> Ode_model.Oid.t
val pdelete : txn -> Ode_model.Oid.t -> unit
val get : txn -> Ode_model.Oid.t -> (string * Ode_model.Value.t) list option
val get_field : txn -> Ode_model.Oid.t -> string -> Ode_model.Value.t
(** Raises [Not_found] on a dead object or unknown field. *)

val set_field : txn -> Ode_model.Oid.t -> string -> Ode_model.Value.t -> unit
val update : txn -> Ode_model.Oid.t -> (string * Ode_model.Value.t) list -> unit

val exists : t -> ?txn:txn -> Ode_model.Oid.t -> bool
val class_name_of : t -> Ode_model.Oid.t -> string option
val is_instance : t -> Ode_model.Oid.t -> string -> bool
(** Subclass-aware dynamic type test: the paper's [p is persistent C*]. *)

val call : txn -> Ode_model.Oid.t -> string -> Ode_model.Value.t list -> Ode_model.Value.t
(** Invoke a method with dynamic dispatch. *)

val eval : txn -> ?vars:(string * Ode_model.Value.t) list -> Ode_lang.Ast.expr -> Ode_model.Value.t

(** {1 Versions (paper §4)} *)

val newversion : txn -> Ode_model.Oid.t -> int
val versions : txn -> Ode_model.Oid.t -> int list
(** Version numbers in ascending (creation) order. *)

val current_version : txn -> Ode_model.Oid.t -> int
val get_version : txn -> Ode_model.Oid.vref -> (string * Ode_model.Value.t) list option
val pdelete_version : txn -> Ode_model.Oid.vref -> unit

(** {1 Triggers (paper §6)} *)

val activate : txn -> Ode_model.Oid.t -> string -> Ode_model.Value.t list -> int
(** Returns the trigger id. *)

val deactivate : txn -> int -> unit

val advance_time : t -> int -> unit
(** Advance the logical clock; timed triggers whose deadline passed fire
    their timeout actions (each as its own transaction). Must be called
    outside a transaction. *)

val now : t -> int

val set_action_printer : t -> (string -> unit) -> unit
(** Where [print] statements in trigger actions write (default stdout). *)

(** {1 Named roots} *)

val set_root : txn -> string -> Ode_model.Value.t -> unit
val root : txn -> string -> Ode_model.Value.t option
val root_exn : txn -> string -> Ode_model.Value.t
