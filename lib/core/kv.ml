(* The committed key-value store: a B+tree directory mapping logical keys to
   heap record ids. Payloads of any size live in the heap; the directory
   keeps keys ordered so class extents and index ranges scan in key order. *)

module Heap = Ode_storage.Heap
module Bptree = Ode_index.Bptree
open Types

let encode_rid (rid : Heap.rid) =
  let b = Buffer.create 6 in
  Heap.encode_rid b rid;
  Buffer.contents b

let decode_rid s = Heap.decode_rid (Ode_util.Codec.cursor s)

let get db key =
  match Bptree.find db.kv_dir key with
  | None -> None
  | Some rid -> Heap.get db.kv_heap (decode_rid rid)

let mem db key = Bptree.mem db.kv_dir key

let put db key payload =
  let fresh () =
    let rid = Heap.insert db.kv_heap payload in
    Bptree.insert db.kv_dir key (encode_rid rid)
  in
  match Bptree.find db.kv_dir key with
  | None -> fresh ()
  | Some rid_s -> (
      let rid = decode_rid rid_s in
      (* After a crash mid-apply the directory can point at a dead or torn
         record; recovery replays the Put, which must then insert afresh. *)
      match Heap.get db.kv_heap rid with
      | Some _ ->
          let rid' = Heap.update db.kv_heap rid payload in
          if not (Heap.rid_equal rid rid') then Bptree.insert db.kv_dir key (encode_rid rid')
      | None | (exception Ode_util.Codec.Corrupt _) -> fresh ())

let delete db key =
  match Bptree.find db.kv_dir key with
  | None -> ()
  | Some rid_s ->
      ignore (Heap.delete db.kv_heap (decode_rid rid_s));
      ignore (Bptree.delete db.kv_dir key)

(* [f key payload]; return false to stop. *)
let iter_prefix db prefix f =
  (* Collect the matching directory entries first: the callback may mutate
     the tree (e.g. a fixpoint query inserting objects mid-scan), and B+tree
     iteration is not stable under concurrent splits. *)
  let entries = ref [] in
  Bptree.iter_prefix db.kv_dir prefix (fun k rid ->
      entries := (k, rid) :: !entries;
      true);
  let rec go = function
    | [] -> ()
    | (k, rid_s) :: rest -> (
        match Heap.get db.kv_heap (decode_rid rid_s) with
        | None -> go rest (* deleted since collection *)
        | Some payload -> if f k payload then go rest)
  in
  go (List.rev !entries)
