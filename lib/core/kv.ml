(* The committed key-value store: a B+tree directory mapping logical keys to
   heap record ids. Payloads of any size live in the heap; the directory
   keeps keys ordered so class extents and index ranges scan in key order.

   Every heap record is prefixed with its owning key. Heap rids are physical
   (page, slot) addresses that get reused, and after a crash the on-disk
   directory is a patchwork of pages flushed at different commit points — a
   stale entry can alias a slot that recovery's replay has since handed to a
   different key. The embedded key makes every resolution self-verifying:
   put, delete and get refuse to touch a record owned by another key, so a
   stale alias can redirect nothing worse than its own directory entry. *)

module Codec = Ode_util.Codec
module Heap = Ode_storage.Heap
module Bptree = Ode_index.Bptree
open Types

let encode_rid (rid : Heap.rid) =
  let b = Buffer.create 6 in
  Heap.encode_rid b rid;
  Buffer.contents b

let decode_rid s = Heap.decode_rid (Codec.cursor s)

let encode_record key payload =
  let b = Buffer.create (String.length key + String.length payload + 3) in
  Codec.put_string b key;
  Codec.put_raw b payload;
  Buffer.contents b

let decode_record key raw =
  let c = Codec.cursor raw in
  match Codec.get_string c with
  | k when String.equal k key -> Some (Codec.get_raw c (Codec.remaining c))
  | _ -> None
  | exception _ -> None

let get db key =
  match Bptree.find db.kv_dir key with
  | None -> None
  | Some rid -> (
      match Heap.get db.kv_heap (decode_rid rid) with
      | None -> None
      | Some raw -> decode_record key raw)

let mem db key = Bptree.mem db.kv_dir key

let put db key payload =
  let record = encode_record key payload in
  let fresh () =
    let rid = Heap.insert db.kv_heap record in
    Bptree.insert db.kv_dir key (encode_rid rid)
  in
  match Bptree.find db.kv_dir key with
  | None -> fresh ()
  | Some rid_s -> (
      let rid = decode_rid rid_s in
      (* After a crash mid-apply the directory can point at a dead or torn
         record, or at a foreign one (stale alias); recovery replays the
         Put, which must then insert afresh and leave the record alone. *)
      match Heap.get db.kv_heap rid with
      | Some raw when decode_record key raw <> None ->
          let rid' = Heap.update db.kv_heap rid record in
          if not (Heap.rid_equal rid rid') then Bptree.insert db.kv_dir key (encode_rid rid')
      | Some _ | None | (exception Ode_util.Codec.Corrupt _) -> fresh ())

let delete db key =
  match Bptree.find db.kv_dir key with
  | None -> ()
  | Some rid_s ->
      let rid = decode_rid rid_s in
      (* Free the record only when this key owns it. A dead, torn or
         foreign record stays (the orphan sweep reclaims carcasses), but
         the directory entry must be dropped regardless or replayed Deletes
         would fail forever. *)
      (match Heap.get db.kv_heap rid with
      | Some raw when decode_record key raw <> None -> ignore (Heap.delete db.kv_heap rid)
      | Some _ | None | (exception Ode_util.Codec.Corrupt _) -> ());
      ignore (Bptree.delete db.kv_dir key)

(* [f key payload]; return false to stop. *)
let iter_prefix db prefix f =
  (* Collect the matching directory entries first: the callback may mutate
     the tree (e.g. a fixpoint query inserting objects mid-scan), and B+tree
     iteration is not stable under concurrent splits. *)
  let entries = ref [] in
  Bptree.iter_prefix db.kv_dir prefix (fun k rid ->
      entries := (k, rid) :: !entries;
      true);
  let rec go = function
    | [] -> ()
    | (k, rid_s) :: rest -> (
        match Heap.get db.kv_heap (decode_rid rid_s) with
        | None -> go rest (* deleted since collection *)
        | Some raw -> (
            match decode_record k raw with
            | None -> go rest (* stale alias: not this key's record *)
            | Some payload -> if f k payload then go rest))
  in
  go (List.rev !entries)
