(* The committed key-value store: a B+tree directory mapping logical keys to
   heap record ids. Payloads of any size live in the heap; the directory
   keeps keys ordered so class extents and index ranges scan in key order.

   Every heap record is prefixed with its owning key. Heap rids are physical
   (page, slot) addresses that get reused, and after a crash the on-disk
   directory is a patchwork of pages flushed at different commit points — a
   stale entry can alias a slot that recovery's replay has since handed to a
   different key. The embedded key makes every resolution self-verifying:
   put, delete and get refuse to touch a record owned by another key, so a
   stale alias can redirect nothing worse than its own directory entry. *)

module Codec = Ode_util.Codec
module Heap = Ode_storage.Heap
module Bptree = Ode_index.Bptree
open Types

let encode_rid (rid : Heap.rid) =
  let b = Buffer.create 6 in
  Heap.encode_rid b rid;
  Buffer.contents b

let decode_rid s = Heap.decode_rid (Codec.cursor s)

let encode_record key payload =
  let b = Buffer.create (String.length key + String.length payload + 3) in
  Codec.put_string b key;
  Codec.put_raw b payload;
  Buffer.contents b

(* Ownership test by offset arithmetic: compare the embedded key in place
   without materialising it. Record layout is [u32 LE keylen][key][payload]. *)
let record_owned key raw =
  let rlen = String.length raw and klen = String.length key in
  rlen >= 4 + klen
  && Char.code raw.[0]
     lor (Char.code raw.[1] lsl 8)
     lor (Char.code raw.[2] lsl 16)
     lor (Char.code raw.[3] lsl 24)
     = klen
  &&
  let rec eq i = i >= klen || (String.unsafe_get raw (4 + i) = String.unsafe_get key i && eq (i + 1)) in
  eq 0

(* Zero-copy decode: one substring for the payload, no key copy, never
   raises (a short or foreign record is just [None]). *)
let decode_record_view key raw =
  if record_owned key raw then
    let skip = 4 + String.length key in
    Some (String.sub raw skip (String.length raw - skip))
  else None

let decode_record = decode_record_view

let get db key =
  match Bptree.find db.kv_dir key with
  | None -> None
  | Some rid -> (
      match Heap.get db.kv_heap (decode_rid rid) with
      | None -> None
      | Some raw -> decode_record key raw)

let mem db key = Bptree.mem db.kv_dir key

let put db key payload =
  Ode_util.Trace.with_span ~cat:"kv" "kv.put" @@ fun () ->
  (* The single committed-write choke point (commit apply, recovery replay,
     direct callers): a cached decode of this key is now stale. *)
  Ocache.invalidate db key;
  let record = encode_record key payload in
  let fresh () =
    let rid = Heap.insert db.kv_heap record in
    Bptree.insert db.kv_dir key (encode_rid rid)
  in
  match Bptree.find db.kv_dir key with
  | None -> fresh ()
  | Some rid_s -> (
      let rid = decode_rid rid_s in
      (* After a crash mid-apply the directory can point at a dead or torn
         record, or at a foreign one (stale alias); recovery replays the
         Put, which must then insert afresh and leave the record alone. *)
      match Heap.get db.kv_heap rid with
      | Some raw when decode_record key raw <> None ->
          let rid' = Heap.update db.kv_heap rid record in
          if not (Heap.rid_equal rid rid') then Bptree.insert db.kv_dir key (encode_rid rid')
      | Some _ | None | (exception Ode_util.Codec.Corrupt _) -> fresh ())

let delete db key =
  Ode_util.Trace.with_span ~cat:"kv" "kv.delete" @@ fun () ->
  Ocache.invalidate db key;
  match Bptree.find db.kv_dir key with
  | None -> ()
  | Some rid_s ->
      let rid = decode_rid rid_s in
      (* Free the record only when this key owns it. A dead, torn or
         foreign record stays (the orphan sweep reclaims carcasses), but
         the directory entry must be dropped regardless or replayed Deletes
         would fail forever. *)
      (match Heap.get db.kv_heap rid with
      | Some raw when decode_record key raw <> None -> ignore (Heap.delete db.kv_heap rid)
      | Some _ | None | (exception Ode_util.Codec.Corrupt _) -> ());
      ignore (Bptree.delete db.kv_dir key)

(* [f key payload]; return false to stop.

   Default path: stream through a B+tree cursor — one leaf resident at a
   time, and an early-exiting callback stops page reads immediately. The
   cursor snapshots each leaf's entry array (arrays are copied on mutation),
   so a split or delete racing the scan cannot corrupt it.

   Collect-first fallback: when the scanning transaction already has pending
   writes under the prefix, the scan's callback is likely interleaving
   overlay reads and further writes against the same extent (e.g. a fixpoint
   query inserting objects mid-scan). Materialising the directory entries up
   front keeps that case on the historically stable footing.

   [?txn] is the scanning transaction; when omitted, [db.active] (the most
   recently begun write transaction) is consulted as before. Reader domains
   must always pass their own transaction: [db.active] belongs to the writer
   and reading it from another domain is a race. *)
let pending_under_prefix db ?txn prefix =
  match (match txn with Some _ as t -> t | None -> db.active) with
  | None -> false
  | Some t ->
      Hashtbl.length t.writes > 0
      && Hashtbl.fold
           (fun k _ acc -> acc || String.starts_with ~prefix k)
           t.writes false

let iter_prefix db ?txn prefix f =
  let fetch k rid_s k_payload_fn =
    match Heap.get db.kv_heap (decode_rid rid_s) with
    | None -> true (* deleted since the directory entry was read *)
    | Some raw -> (
        match decode_record_view k raw with
        | None -> true (* stale alias: not this key's record *)
        | Some payload -> k_payload_fn payload)
  in
  if pending_under_prefix db ?txn prefix then begin
    let entries = ref [] in
    Bptree.iter_prefix db.kv_dir prefix (fun k rid ->
        entries := (k, rid) :: !entries;
        true);
    let rec go = function
      | [] -> ()
      | (k, rid_s) :: rest -> if fetch k rid_s (fun payload -> f k payload) then go rest
    in
    go (List.rev !entries)
  end
  else
    let cur = Bptree.cursor_prefix db.kv_dir prefix in
    let rec go () =
      match Bptree.cursor_next cur with
      | None -> ()
      | Some (k, rid_s) -> if fetch k rid_s (fun payload -> f k payload) then go ()
    in
    go ()

(* [f key]; return false to stop. Like [iter_prefix] but never touches the
   heap: only directory leaves are read, so the scan's working set is the
   key tree, not the records. The directory can hold entries for records
   that died since (deletes drop entries eagerly, but crash recovery may
   leave strays), so callers must re-verify liveness per key — e.g. with
   [get] — before trusting a candidate. *)
let iter_prefix_keys db ?txn prefix f =
  if pending_under_prefix db ?txn prefix then begin
    let keys = ref [] in
    Bptree.iter_prefix db.kv_dir prefix (fun k _ ->
        keys := k :: !keys;
        true);
    let rec go = function [] -> () | k :: rest -> if f k then go rest in
    go (List.rev !keys)
  end
  else
    let cur = Bptree.cursor_prefix db.kv_dir prefix in
    let rec go () =
      match Bptree.cursor_next cur with None -> () | Some (k, _) -> if f k then go ()
    in
    go ()
