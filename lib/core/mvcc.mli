(** Multi-version concurrency control: snapshot isolation over logical keys.

    The engine remains single-writer (one domain applies commits), but any
    number of transactions may now be open at once. Each transaction
    captures a read timestamp at begin — the commit LSN of the last applied
    transaction — and every read resolves against that snapshot:
    committed-after-snapshot overwrites and deletes are undone through
    per-key version chains kept here, so a long-lived reader sees one
    stable database state while writers keep committing.

    {2 Version chains}

    A chain holds a key's committed history, newest first: each entry is
    the value written by the commit with that timestamp ([None] =
    tombstone), and the oldest entry is the pre-image captured when the
    chain was created. Chains are recorded by the commit path {e only when
    a concurrent snapshot exists that could still need the overwritten
    image}; with no concurrent snapshots the store behaves exactly as
    before (no chains, no overhead beyond one atomic load per read).
    Commit timestamps are the WAL commit LSNs, so the version order is
    durable, survives checkpoints, and is reproduced identically by crash
    recovery and replication standbys.

    {2 Conflicts}

    Write-write conflicts are detected at commit, first-committer-wins: a
    committing transaction conflicts if any key it wrote has a chain head
    newer than its read timestamp. Missing chains are safe: a chain is
    always recorded while any transaction that could later conflict holds
    its snapshot (registered at begin), and the garbage collector never
    reclaims a chain whose head is newer than the oldest live snapshot.

    {2 Garbage collection}

    [gc] drops chains entirely invisible to every live snapshot and trims
    entries older than the oldest one still reachable; [maybe_gc] runs it
    incrementally from the commit and release paths. All operations are
    internally synchronized — readers on reader domains may call {!read}
    concurrently with each other and with gauge sampling. *)

type t

type visibility =
  | Latest  (** the snapshot sees the key's current committed state *)
  | Older of string option
      (** the snapshot predates the chain head: the value it sees
          ([None] = the key did not exist / was deleted) *)

val create : unit -> t

(** {1 Snapshots} *)

val snapshot : t -> read_ts:int -> int
(** Register a live snapshot; returns a token for {!release}. *)

val release : t -> int -> unit
(** Drop a snapshot (idempotent per token); may trigger incremental GC. *)

val oldest_snapshot : t -> int option
(** The minimum read timestamp among live snapshots — the GC horizon. *)

val live_snapshots : t -> int
(** Number of registered snapshots. *)

(** {1 Reads} *)

val read : t -> read_ts:int -> string -> visibility
(** Resolve [key] against the snapshot. [Latest] means "use the committed
    store (and its caches) as-is" — also the answer whenever the key has
    no chain. O(1) with an atomic fast path when no chains exist. *)

val keys_matching : t -> (string -> bool) -> string list
(** All chained keys satisfying the predicate, sorted — scan paths merge
    these into B+tree iteration so keys deleted after a snapshot still
    surface as candidates (visibility filtering happens per key). *)

(** {1 Commit} *)

val conflict : t -> read_ts:int -> string list -> string option
(** First-committer-wins check: the first of [keys] whose chain head is
    newer than [read_ts], if any. Run before logging the commit. *)

val commit :
  t -> ts:int -> except:int -> pre:(string -> string option) -> (string * string option) list -> unit
(** Record one committed transaction's (key, new value) pairs at commit
    timestamp [ts] ({e before} the writes are applied to the store).
    [pre key] must return the key's current committed value — it seeds a
    new chain's base entry. [except] is the committer's own snapshot
    token: chains are recorded only if any {e other} snapshot is live.
    Also advances the commit floor and may trigger incremental GC. *)

(** {1 Garbage collection and gauges} *)

val gc : t -> unit
(** Reclaim: drop chains whose head every live snapshot can already see,
    trim entries older than the horizon. With no live snapshots this
    empties the table. *)

val chain_count : t -> int
(** Keys currently carrying a version chain. *)

val dead_versions : t -> int
(** Superseded versions retained for live snapshots (chain entries beyond
    the heads) — the reclaimable backlog. *)

val reclaimed_total : t -> int
(** Versions reclaimed by GC since startup (monotonic). *)
