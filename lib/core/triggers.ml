(* Triggers (paper §6).

   Triggers are declared in classes and *activated* per object; activation
   returns a trigger id usable for explicit deactivation. Two kinds:
   once-only (deactivated automatically after firing) and perpetual. Timed
   triggers carry a [within t] deadline on a logical clock: if the condition
   does not come true by the deadline, the timeout action runs instead.

   Conditions are conceptually evaluated at the end of each transaction; we
   evaluate them over the write set of the committing transaction, for the
   objects it touched. A firing only *schedules* the action: the action runs
   as its own transaction after the triggering one commits ("weak
   coupling"), so actions of an aborted transaction never run. *)

module Codec = Ode_util.Codec
module Oid = Ode_model.Oid
module Value = Ode_model.Value
module Schema = Ode_model.Schema
module Catalog = Ode_model.Catalog
module Eval = Ode_model.Eval
open Types

exception Trigger_error of string

let err fmt = Format.kasprintf (fun s -> raise (Trigger_error s)) fmt

(* -- persistence of activation records ------------------------------------- *)

let encode_activation (a : activation) =
  let b = Buffer.create 64 in
  Codec.put_int b a.tid;
  Oid.encode b a.aoid;
  Codec.put_string b a.tcls;
  Codec.put_string b a.tname;
  Codec.put_u16 b (List.length a.targs);
  List.iter (Value.encode b) a.targs;
  Codec.put_bool b a.perpetual;
  (match a.deadline with
  | None -> Codec.put_bool b false
  | Some d ->
      Codec.put_bool b true;
      Codec.put_int b d);
  Codec.put_bool b a.active;
  Buffer.contents b

let decode_activation s =
  let c = Codec.cursor s in
  let tid = Codec.get_int c in
  let aoid = Oid.decode c in
  let tcls = Codec.get_string c in
  let tname = Codec.get_string c in
  let n = Codec.get_u16 c in
  let targs = List.init n (fun _ -> Value.decode c) in
  let perpetual = Codec.get_bool c in
  let deadline = if Codec.get_bool c then Some (Codec.get_int c) else None in
  let active = Codec.get_bool c in
  { tid; aoid; tcls; tname; targs; perpetual; deadline; active }

(* -- in-memory mirror --------------------------------------------------------- *)

let register db a =
  Hashtbl.replace db.activations a.tid a;
  let existing = Option.value (Hashtbl.find_opt db.by_oid a.aoid) ~default:[] in
  if not (List.mem a.tid existing) then Hashtbl.replace db.by_oid a.aoid (a.tid :: existing)

let unregister db tid =
  match Hashtbl.find_opt db.activations tid with
  | None -> ()
  | Some a ->
      Hashtbl.remove db.activations tid;
      let remaining =
        List.filter (fun t -> t <> tid) (Option.value (Hashtbl.find_opt db.by_oid a.aoid) ~default:[])
      in
      if remaining = [] then Hashtbl.remove db.by_oid a.aoid
      else Hashtbl.replace db.by_oid a.aoid remaining

let load_all db =
  Kv.iter_prefix db Keys.trigger_prefix (fun _ payload ->
      let a = decode_activation payload in
      if a.active then register db a;
      true)

(* -- activation / deactivation -------------------------------------------------- *)

let find_decl db oid tname =
  match Store.class_of db oid with
  | None -> err "object %a has unknown class" Oid.pp oid
  | Some cls -> (
      match Catalog.find_trigger db.catalog cls tname with
      | Some g ->
          (* Report the class that declares the trigger. *)
          let decl_cls =
            List.find
              (fun (a : Schema.cls) ->
                List.exists (fun (t : Schema.trigger) -> t.gname = tname) a.own_triggers)
              (List.rev (Catalog.lineage db.catalog cls))
          in
          (g, decl_cls.Schema.name)
      | None -> err "class %s has no trigger %s" cls.Schema.name tname)

let activate txn oid tname args =
  let db = txn.tdb in
  (* Guard before the next_tid bump below: activation mutates shared meta
     state ahead of its overlay write. *)
  if txn.tro then raise Types.Read_only_txn;
  if not (Store.exists db (Some txn) oid) then err "cannot activate trigger on dead object %a" Oid.pp oid;
  let g, tcls = find_decl db oid tname in
  if List.length args <> List.length g.gparams then
    err "trigger %s expects %d arguments, got %d" tname (List.length g.gparams) (List.length args);
  let deadline =
    match g.gwithin with
    | None -> None
    | Some e -> (
        let vars = List.map2 (fun (p : Schema.field) v -> (p.fname, v)) g.gparams args in
        match Runtime.eval db (Some txn) ~vars ~this:(Value.Ref oid) e with
        | Value.Int t -> Some (db.meta.clock + t)
        | v -> err "trigger %s: 'within' must be an int, got %a" tname Value.pp v)
  in
  let tid = db.meta.next_tid in
  db.meta.next_tid <- tid + 1;
  txn.meta_dirty <- true;
  let a = { tid; aoid = oid; tcls; tname; targs = args; perpetual = g.gperpetual; deadline; active = true } in
  Store.write txn (Keys.trigger tid) (encode_activation a);
  (* Conditions are evaluated at the end of each transaction (paper §6); an
     activation whose condition already holds fires when the activating
     transaction commits, so mark the object for evaluation. *)
  Hashtbl.replace txn.touched oid ();
  tid

let deactivate txn tid =
  let db = txn.tdb in
  let current =
    match Store.read db (Some txn) (Keys.trigger tid) with
    | Some s -> decode_activation s
    | None -> err "no such trigger activation %d" tid
  in
  Store.write txn (Keys.trigger tid) (encode_activation { current with active = false })

(* -- commit-time evaluation --------------------------------------------------------- *)

(* The transaction's own trigger writes, digested once per commit:
   tid -> activation overrides, plus per-oid activations new in this txn. *)
type txn_trigger_view = {
  overrides : (int, activation) Hashtbl.t;
  new_by_oid : (Oid.t, activation list) Hashtbl.t;
}

let txn_view txn =
  let db = txn.tdb in
  let view = { overrides = Hashtbl.create 8; new_by_oid = Hashtbl.create 8 } in
  Hashtbl.iter
    (fun key op ->
      if String.length key > 0 && key.[0] = 'T' then
        match op with
        | Put payload ->
            let a = decode_activation payload in
            Hashtbl.replace view.overrides a.tid a;
            let committed = Option.value (Hashtbl.find_opt db.by_oid a.aoid) ~default:[] in
            if not (List.mem a.tid committed) then
              Hashtbl.replace view.new_by_oid a.aoid
                (a :: Option.value (Hashtbl.find_opt view.new_by_oid a.aoid) ~default:[])
        | Del -> ())
    txn.writes;
  view

(* Activations relevant to [oid] as this transaction sees them: committed
   state adjusted by the transaction's own trigger writes. *)
let effective_activations txn view oid =
  let db = txn.tdb in
  let committed = Option.value (Hashtbl.find_opt db.by_oid oid) ~default:[] in
  let of_committed =
    List.filter_map
      (fun tid ->
        match Hashtbl.find_opt view.overrides tid with
        | Some a -> Some a
        | None -> Hashtbl.find_opt db.activations tid)
      committed
  in
  of_committed @ List.rev (Option.value (Hashtbl.find_opt view.new_by_oid oid) ~default:[])

let condition_holds db txn (a : activation) g =
  let vars = List.map2 (fun (p : Schema.field) v -> (p.fname, v)) g.Schema.gparams a.targs in
  match Runtime.eval db txn ~vars ~this:(Value.Ref a.aoid) g.Schema.gcond with
  | v -> ( match Eval.truthy v with b -> b | exception Eval.Error _ -> false)
  | exception Eval.Error _ -> false

(* Firing discipline. The paper: "An active trigger fires when its condition
   *becomes* true."

   - Perpetual triggers are edge-triggered: they fire only on a false→true
     transition across the committing transaction (pre-state = committed
     state, post-state = through the write set). Without this, an action
     that leaves its own condition true would fire itself forever.
   - Once-only triggers fire whenever the condition holds at an evaluation
     point (they deactivate immediately, so there is no loop to prevent),
     which also gives the useful "fires at activation if already true"
     behaviour.
   - An activation created by this very transaction has no pre-state: its
     pre-condition counts as false. *)
let should_fire db txn view (a : activation) g =
  condition_holds db (Some txn) a g
  &&
  if not a.perpetual then true
  else
    let txn_local =
      match Hashtbl.find_opt view.new_by_oid a.aoid with
      | Some news -> List.exists (fun (x : activation) -> x.tid = a.tid) news
      | None -> false
    in
    txn_local || not (condition_holds db None a g)

(* Evaluate conditions for the committing transaction; returns the firings
   and buffers the bookkeeping writes (once-only deactivation, activation
   removal for deleted objects) into the same transaction. *)
let evaluate txn =
  Ode_util.Trace.with_span ~cat:"trigger" "triggers.evaluate" @@ fun () ->
  let db = txn.tdb in
  let firings = ref [] in
  let view = txn_view txn in
  Hashtbl.iter
    (fun oid () ->
      let acts = effective_activations txn view oid in
      if Store.exists db (Some txn) oid then
        List.iter
          (fun a ->
            if (a : activation).active then
              match find_decl db a.aoid a.tname with
              | g, _ ->
                  if should_fire db txn view a g then begin
                    Ode_util.Stats.incr_triggers_fired ();
                    Ode_util.Trace.instant ~cat:"trigger" ~args:[ ("trigger", a.tname) ]
                      "trigger.fired";
                    firings := { f_act = a; f_kind = Fired } :: !firings;
                    if not a.perpetual then
                      Store.write txn (Keys.trigger a.tid) (encode_activation { a with active = false })
                  end
              | exception Trigger_error _ -> ())
          acts
      else
        (* The object died in this transaction: its activations go away. *)
        List.iter (fun a -> Store.remove txn (Keys.trigger a.tid)) acts)
    txn.touched;
  List.rev !firings

(* After a successful commit, fold the transaction's trigger writes into the
   in-memory mirror. *)
let sync_after_commit db txn =
  Hashtbl.iter
    (fun key op ->
      if String.length key > 0 && key.[0] = 'T' then
        match op with
        | Put payload ->
            let a = decode_activation payload in
            if a.active then register db a else unregister db a.tid
        | Del ->
            (* Key layout: 'T' ++ int key; recover the tid. *)
            let c = Codec.cursor ~pos:1 key in
            let raw = Codec.get_raw c 8 in
            let tid =
              let v = ref 0L in
              String.iter (fun ch -> v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code ch))) raw;
              Int64.to_int (Int64.logxor !v Int64.min_int)
            in
            unregister db tid)
    txn.writes

(* -- timed triggers -------------------------------------------------------------------- *)

(* Activations whose deadline has passed; the caller deactivates them and
   runs the timeout actions, each in its own transaction. *)
let expired db =
  Hashtbl.fold
    (fun _ a acc ->
      match a.deadline with
      | Some d when a.active && d <= db.meta.clock -> a :: acc
      | _ -> acc)
    db.activations []
