(** Access-path selection for [forall ... suchthat] iteration.

    The paper notes the [suchthat] and [by] clauses "can be used to
    advantage in query optimization" (§3.1); this planner does exactly that:
    it splits the [suchthat] expression into conjuncts, looks for a
    sargable conjunct ([var.field OP constant]) on an indexed field, and
    turns it into a point or range probe of the secondary index, with the
    remaining conjuncts as a residual filter. *)

open Types

type access =
  | Full_scan
  | Index_eq of { idx_id : int; field : string; value : Ode_model.Value.t }
  | Index_range of {
      idx_id : int;
      field : string;
      lo : (Ode_model.Value.t * bool) option;  (** bound, inclusive *)
      hi : (Ode_model.Value.t * bool) option;
    }

type plan = {
  p_cls : string;             (** root class of the iteration *)
  p_deep : bool;              (** include subclass clusters (paper §3.1.1) *)
  p_classes : string list;    (** concrete clusters the scan will accept *)
  p_access : access;
  p_residual : Ode_lang.Ast.expr option;  (** checked per candidate object *)
  p_var : string;             (** the loop variable the residual binds *)
}

val plan :
  db ->
  ?txn:txn ->
  ?env:(string * Ode_model.Value.t) list ->
  var:string ->
  cls:string ->
  deep:bool ->
  suchthat:Ode_lang.Ast.expr option ->
  unit ->
  plan
(** Raises {!Ode_model.Catalog.Schema_error} for an unknown class. [env]
    supplies outer loop bindings so join conjuncts become probes. [txn] is
    the transaction the query will run in (constant conjuncts evaluate
    against its view); omitted, [db.active] is consulted — reader domains
    must pass their own. *)

val explain : plan -> string
(** Human-readable plan, e.g.
    ["index range person(age): 30 < age — residual: (x.name != \"\")"]. *)

type node_kind = Access | Filter | Order | Output
(** Plan-node roles for per-node profiling: candidate enumeration + liveness
    (Access), per-candidate predicate evaluation (Filter), [by]-clause key
    evaluation and sorting (Order), and the caller's loop body (Output). *)

val nodes : ?suchthat:Ode_lang.Ast.expr -> plan -> (node_kind * string) list
(** The Access and Filter nodes of a plan with display labels; the executor
    appends Order/Output as the query shape requires. [suchthat] is the full
    predicate, used to label the filter node when the plan has no residual
    but the executor still re-checks the predicate per candidate. *)
