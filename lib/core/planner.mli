(** Access-path selection for [forall ... suchthat] iteration.

    The paper notes the [suchthat] and [by] clauses "can be used to
    advantage in query optimization" (§3.1); this planner does exactly that:
    it splits the [suchthat] expression into conjuncts, looks for sargable
    conjuncts ([var.field OP constant]) on indexed fields, and turns one
    into a point or range probe of the secondary index, with the remaining
    conjuncts as a residual filter.

    Every plan carries a cardinality/cost {!estimate}. After [analyze] has
    collected per-extent cardinalities and per-index key histograms
    ({!Ostats}), candidate access paths are priced from those and the
    cheapest wins; with absent or stale statistics the planner falls back
    to the original first-sargable-conjunct heuristics with textbook
    default selectivities. Two-extent nested [forall] loops go through
    {!plan_join}, which recognizes collection-join links (ref deref, set
    membership, field equality) and fuses the nested loops when the
    statistics say it pays. *)

open Types

type access =
  | Full_scan
  | Index_eq of { idx_id : int; field : string; value : Ode_model.Value.t }
  | Index_range of {
      idx_id : int;
      field : string;
      lo : (Ode_model.Value.t * bool) option;  (** bound, inclusive *)
      hi : (Ode_model.Value.t * bool) option;
    }

type estimate = {
  est_rows : float;  (** candidates the access path will emit *)
  est_out : float;  (** rows expected to survive the filter *)
  est_cost : float;  (** total access cost, abstract work units *)
  est_stats : bool;  (** true when derived from analyze statistics *)
}

type plan = {
  p_cls : string;             (** root class of the iteration *)
  p_deep : bool;              (** include subclass clusters (paper §3.1.1) *)
  p_classes : string list;    (** concrete clusters the scan will accept *)
  p_access : access;
  p_residual : Ode_lang.Ast.expr option;  (** checked per candidate object *)
  p_var : string;             (** the loop variable the residual binds *)
  p_est : estimate;
}

val indexable_value : Ode_model.Value.t -> bool
(** Values with an order-preserving byte encoding ({!Ode_model.Value.index_key}). *)

val plan :
  db ->
  ?txn:txn ->
  ?env:(string * Ode_model.Value.t) list ->
  var:string ->
  cls:string ->
  deep:bool ->
  suchthat:Ode_lang.Ast.expr option ->
  unit ->
  plan
(** Raises {!Ode_model.Catalog.Schema_error} for an unknown class. [env]
    supplies outer loop bindings so join conjuncts become probes. [txn] is
    the transaction the query will run in (constant conjuncts evaluate
    against its view); omitted, [db.active] is consulted — reader domains
    must pass their own. Bumps [planner.stats_hits] or [planner.fallbacks]
    per planned predicate. *)

val explain : plan -> string
(** Human-readable plan with its estimate, e.g.
    ["index range person(age) > 30 — est ~12 rows, cost ~56 (stats) — residual: ..."]. *)

type node_kind = Access | Filter | Order | Output
(** Plan-node roles for per-node profiling: candidate enumeration + liveness
    (Access), per-candidate predicate evaluation (Filter), [by]-clause key
    evaluation and sorting (Order), and the caller's loop body (Output). *)

val nodes : ?suchthat:Ode_lang.Ast.expr -> plan -> (node_kind * string) list
(** The Access and Filter nodes of a plan with display labels (estimated
    rows/cost embedded as [~N] figures); the executor appends Order/Output
    as the query shape requires. [suchthat] is the full predicate, used to
    label the filter node when the plan has no residual but the executor
    still re-checks the predicate per candidate. *)

(** {1 Join planning} *)

type join_strategy =
  | Nested_loop  (** inner extent replanned and rescanned per outer row *)
  | Fused_deref of string
      (** [i == o.f]: reach the inner object through the outer's ref field *)
  | Fused_member of string
      (** [i in o.fs]: iterate the outer's set/list field *)
  | Hash_join of { outer_field : string; inner_field : string }
      (** [i.g == o.f]: one streamed build pass over the inner extent,
          hash probe per outer row *)

type join_plan = {
  j_ovar : string;
  j_ivar : string;
  j_outer : plan;                      (** access plan for the outer extent *)
  j_inner_cls : string;
  j_inner_deep : bool;
  j_inner_only : Ode_lang.Ast.expr option;
      (** conjuncts on the inner variable alone (hash-build filter) *)
  j_strategy : join_strategy;
  j_rows : float;                      (** estimated emitted pairs *)
  j_cost : float;                      (** estimated cost of the chosen strategy *)
  j_nested_cost : float;               (** what the unfused nested loop would cost *)
  j_stats : bool;
}

val plan_join :
  db ->
  ?txn:txn ->
  ?env:(string * Ode_model.Value.t) list ->
  outer:string * string * bool ->
  inner:string * string * bool ->
  ?outer_suchthat:Ode_lang.Ast.expr ->
  ?inner_suchthat:Ode_lang.Ast.expr ->
  unit ->
  join_plan
(** Plan a two-extent join ([outer]/[inner] are [(var, class, deep)]).
    [inner_suchthat] may mention both variables; its outer-free conjuncts
    filter the inner side, the rest link the extents. Deref/member fusion
    is chosen whenever the link shape allows (it is semantically identical
    to the nested loop and strictly cheaper); a hash join only when fresh
    statistics price it below the nested loop. Raises
    {!Ode_model.Catalog.Schema_error} for an unknown class. *)

val explain_join : join_plan -> string
(** Two-line human-readable join plan: strategy + estimates, then the
    outer access path. *)
