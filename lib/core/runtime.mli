(** Binding the expression evaluator to a live database.

    Builds {!Ode_model.Eval.hooks} whose object access goes through the
    given transaction's write set, whose dynamic class tests consult the
    catalog, and whose method calls dispatch on the receiver's runtime
    class (most-derived definition wins). Also provides the database-level
    builtins: version navigation ([vref vnum vprev vnext current
    nversions]), the logical clock ([now()]), and named roots
    ([getroot]). *)

open Types

val hooks : db -> txn option -> Ode_model.Eval.hooks

val call_method :
  db -> txn option -> Ode_model.Value.t -> string -> Ode_model.Value.t list -> Ode_model.Value.t
(** Raises {!Ode_model.Eval.Error} on unknown method / arity mismatch. *)

val eval :
  db ->
  txn option ->
  ?vars:(string * Ode_model.Value.t) list ->
  ?this:Ode_model.Value.t ->
  Ode_lang.Ast.expr ->
  Ode_model.Value.t
