(** Transactions.

    The paper treats "any O++ program that interacts with the database" as a
    single transaction; here transactions are explicit and the engine runs
    any number of them concurrently under MVCC snapshot isolation: each
    transaction captures a read timestamp at {!begin_} and reads resolve
    against that snapshot through {!Mvcc} version chains, while writes stay
    private in a per-transaction write set until commit (deferred apply).
    At commit, constraints are checked, trigger conditions evaluated,
    write-write conflicts detected (first-committer-wins — the loser aborts
    with the retryable {!Types.Txn_conflict}), the logical operations
    logged with their commit timestamp and fsynced, and only then applied
    to the disk structures. Abort simply discards the write set.

    Commit returns the trigger firings to run as follow-up transactions
    (weak coupling); {!Database.with_txn} drains them. *)

open Types

val begin_ : db -> txn
(** Open a read-write transaction. Any number may be open at once; each
    gets its own snapshot and write set. *)

val begin_read : db -> txn
(** A detached read-only transaction: it never registers as a writer or
    allocates an xid, so the server runs any number concurrently on reader
    domains. Every write choke point in {!Store} raises
    {!Types.Read_only_txn} against it before touching shared state; commit
    is trivial (nothing to log). *)

val active : db -> txn option
(** The most recently begun still-open write transaction — the default for
    embedded callers that pass no transaction to read paths. *)

val active_exn : db -> txn

val open_writers : db -> txn list
(** Every open write transaction, unordered. *)

val commit : txn -> firing list
(** Raises {!Types.Constraint_violation} after auto-aborting if a constraint
    fails, {!Types.Txn_conflict} after auto-aborting if another transaction
    committed a conflicting write first. Durability follows the database's
    {!Types.durability} mode: under [Full] the WAL is fsynced before the
    write set is applied (eager); under [Group]/[Async] the commit is
    {e prepared} — logged and applied — but stays pending until {!ack} (or
    a checkpoint) runs the shared fsync. *)

val commit_deferred : txn -> firing list
(** {!commit} with durability always deferred, regardless of mode: the
    prepare phase alone. Pair with {!ack} before acknowledging the commit to
    any client. *)

val ack : db -> unit
(** The ack phase: one [Wal.sync] making every pending (prepared) commit
    durable at once. No-op when nothing is pending — in particular when the
    buffer pool's write-ahead hook or a checkpoint already forced the log. *)

val pending_commits : db -> int
(** Commits prepared but not yet acknowledged by a sync. *)

val abort : txn -> unit

val with_excl : db -> (unit -> 'a) -> 'a
(** Run [f] holding the engine latch exclusively (re-entrant for the single
    mutating domain). The commit apply, checkpoints, DDL and replication
    apply run under it; readers hold the shared side per request. *)

val checkpoint : db -> unit
(** Flush every pool, sync the disks, and reset the WAL. Takes the
    exclusive latch. *)

val wal_bytes : db -> int

(**/**)

val encode_meta : meta -> string
val decode_meta : string -> meta
