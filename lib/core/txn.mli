(** Transactions.

    The paper treats "any O++ program that interacts with the database" as a
    single transaction; here transactions are explicit and the engine runs
    them one at a time (concurrency control is out of the paper's scope and
    ours). The engine is deferred-apply: effects live in a write set until
    commit, when constraints are checked, trigger conditions evaluated, the
    logical operations logged and fsynced, and only then applied to the
    disk structures. Abort simply discards the write set.

    Commit returns the trigger firings to run as follow-up transactions
    (weak coupling); {!Database.with_txn} drains them. *)

open Types

val begin_ : db -> txn
(** Raises [Invalid_argument] if a transaction is already active. *)

val begin_read : db -> txn
(** A detached read-only transaction: it never occupies the single active
    slot or allocates an xid, so any number can run concurrently (the
    server executes queries on reader domains inside one each). Every
    write choke point in {!Store} raises {!Types.Read_only_txn} against it
    before touching shared state; commit is trivial (nothing to log). *)

val active : db -> txn option
val active_exn : db -> txn

val commit : txn -> firing list
(** Raises {!Types.Constraint_violation} after auto-aborting if a constraint
    fails. Durability follows the database's {!Types.durability} mode: under
    [Full] the WAL is fsynced before the write set is applied (eager); under
    [Group]/[Async] the commit is {e prepared} — logged and applied — but
    stays pending until {!ack} (or a checkpoint) runs the shared fsync. *)

val commit_deferred : txn -> firing list
(** {!commit} with durability always deferred, regardless of mode: the
    prepare phase alone. Pair with {!ack} before acknowledging the commit to
    any client. *)

val ack : db -> unit
(** The ack phase: one [Wal.sync] making every pending (prepared) commit
    durable at once. No-op when nothing is pending — in particular when the
    buffer pool's write-ahead hook or a checkpoint already forced the log. *)

val pending_commits : db -> int
(** Commits prepared but not yet acknowledged by a sync. *)

val abort : txn -> unit

val checkpoint : db -> unit
(** Flush every pool, sync the disks, and reset the WAL. *)

val wal_bytes : db -> int

(**/**)

val encode_meta : meta -> string
val decode_meta : string -> meta
