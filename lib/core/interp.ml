module Ast = Ode_lang.Ast
module Oid = Ode_model.Oid
module Value = Ode_model.Value
module Catalog = Ode_model.Catalog
module Eval = Ode_model.Eval
open Types

type env = {
  mutable vars : (string * Value.t) list;
  print : string -> unit;
  this : Value.t option;
}

let env ?(print = print_string) ?this () = { vars = []; print; this }

let define_var e name v = e.vars <- (name, v) :: List.remove_assoc name e.vars
let undefine_var e name = e.vars <- List.remove_assoc name e.vars
let lookup_var e name = List.assoc_opt name e.vars
let all_vars e = e.vars

exception Returned of Value.t

let err fmt = Format.kasprintf (fun s -> raise (Eval.Error s)) fmt

let eval_expr txn env e =
  Runtime.eval txn.tdb (Some txn) ~vars:env.vars ?this:env.this e

let as_oid what (v : Value.t) =
  match v with
  | Ref oid -> oid
  | v -> err "%s expects an object, got %a" what Value.pp v

let rec exec_stmt txn env (s : Ast.stmt) =
  let db = txn.tdb in
  let ev e = eval_expr txn env e in
  match s with
  | SExpr (Call (None, "setroot", [ name_e; val_e ])) -> (
      (* Named persistent roots, writable from scripts (used by dumps). *)
      match ev name_e with
      | Value.Str name ->
          let buf = Buffer.create 16 in
          Value.encode buf (ev val_e);
          Store.write txn (Keys.root name) (Buffer.contents buf)
      | v -> err "setroot expects a string name, got %a" Value.pp v)
  | SExpr e -> ignore (ev e)
  | SPrint es ->
      let parts =
        List.map
          (fun e -> match ev e with Value.Str s -> s | v -> Value.to_string v)
          es
      in
      env.print (String.concat " " parts ^ "\n")
  | SAssign (x, e) -> define_var env x (ev e)
  | SSetField (o, f, e) ->
      let oid = as_oid "field update" (ev o) in
      Store.update_fields txn oid [ (f, ev e) ]
  | SNew (tgt, cname, inits) ->
      let cls = Catalog.find_exn db.catalog cname in
      let values = List.map (fun (f, e) -> (f, ev e)) inits in
      let oid = Store.create txn cls values in
      (match tgt with Some x -> define_var env x (Value.Ref oid) | None -> ())
  | SDelete e -> Store.delete_object txn (as_oid "pdelete" (ev e))
  | SForall q ->
      (* The loop variable is scoped to the loop (shadowing any outer binding
         of the same name); all other assignments made by the body persist,
         so accumulator loops like [total := total + x.age] work. *)
      let outer = List.assoc_opt q.q_var env.vars in
      Query.run db ~txn ~env:env.vars ~var:q.q_var ~cls:q.q_cls ~deep:q.q_deep
        ?suchthat:q.q_suchthat ?by:q.q_by
        (fun oid ->
          define_var env q.q_var (Value.Ref oid);
          exec_stmts txn env q.q_body);
      env.vars <- List.remove_assoc q.q_var env.vars;
      (match outer with Some v -> define_var env q.q_var v | None -> ())
  | SIf (c, then_, else_) ->
      if Eval.truthy (ev c) then exec_stmts txn env then_ else exec_stmts txn env else_
  | SNewVersion e -> ignore (Store.new_version txn (as_oid "newversion" (ev e)))
  | SActivate (tgt, recv, name, args) ->
      let oid = as_oid "activate" (ev recv) in
      let tid = Triggers.activate txn oid name (List.map ev args) in
      (match tgt with Some x -> define_var env x (Value.Int tid) | None -> ())
  | SDeactivate e -> (
      match ev e with
      | Value.Int tid -> Triggers.deactivate txn tid
      | v -> err "deactivate expects a trigger id, got %a" Value.pp v)
  | SInsert (e, f, obj) ->
      let oid = as_oid "insert into" (ev obj) in
      let v = ev e in
      (match Store.get_field db (Some txn) oid f with
      | Some (Value.VSet _ as s) -> Store.update_fields txn oid [ (f, Value.set_add v s) ]
      | Some (Value.VList vs) -> Store.update_fields txn oid [ (f, Value.VList (vs @ [ v ])) ]
      | Some other -> err "insert into %s: not a set or list (%a)" f Value.pp other
      | None -> err "insert into: no field %s" f)
  | SRemove (e, f, obj) ->
      let oid = as_oid "remove from" (ev obj) in
      let v = ev e in
      (match Store.get_field db (Some txn) oid f with
      | Some (Value.VSet _ as s) -> Store.update_fields txn oid [ (f, Value.set_remove v s) ]
      | Some (Value.VList vs) ->
          Store.update_fields txn oid
            [ (f, Value.VList (List.filter (fun x -> not (Value.equal x v)) vs)) ]
      | Some other -> err "remove from %s: not a set or list (%a)" f Value.pp other
      | None -> err "remove from: no field %s" f)
  | SReturn e -> raise (Returned (ev e))

and exec_stmts txn env ss = List.iter (exec_stmt txn env) ss
