module Ast = Ode_lang.Ast
module Oid = Ode_model.Oid
module Value = Ode_model.Value
module Catalog = Ode_model.Catalog
module Eval = Ode_model.Eval
open Types

type env = {
  mutable vars : (string * Value.t) list;
  print : string -> unit;
  this : Value.t option;
}

let env ?(print = print_string) ?this () = { vars = []; print; this }

let define_var e name v = e.vars <- (name, v) :: List.remove_assoc name e.vars
let undefine_var e name = e.vars <- List.remove_assoc name e.vars
let lookup_var e name = List.assoc_opt name e.vars
let all_vars e = e.vars

exception Returned of Value.t

let err fmt = Format.kasprintf (fun s -> raise (Eval.Error s)) fmt

let eval_expr txn env e =
  Runtime.eval txn.tdb (Some txn) ~vars:env.vars ?this:env.this e

let as_oid what (v : Value.t) =
  match v with
  | Ref oid -> oid
  | v -> err "%s expects an object, got %a" what Value.pp v

(* -- join-fusion eligibility ------------------------------------------------ *)

let rec expr_vars acc (e : Ast.expr) =
  match e with
  | Var x -> x :: acc
  | Null | Int _ | Float _ | Bool _ | Str _ | This -> acc
  | Field (b, _) -> expr_vars acc b
  | Binop (_, a, b) -> expr_vars (expr_vars acc a) b
  | Unop (_, a) -> expr_vars acc a
  | Call (recv, _, args) ->
      List.fold_left expr_vars (Option.fold ~none:acc ~some:(expr_vars acc) recv) args
  | Is (a, _) -> expr_vars acc a
  | SetLit es | ListLit es -> List.fold_left expr_vars acc es

(* Calls are the one expression form that can mutate state (builtins like
   [setroot], methods dispatching to them), so a call-free expression is
   pure. *)
let rec expr_call_free (e : Ast.expr) =
  match e with
  | Call _ -> false
  | Var _ | Null | Int _ | Float _ | Bool _ | Str _ | This -> true
  | Field (b, _) -> expr_call_free b
  | Binop (_, a, b) -> expr_call_free a && expr_call_free b
  | Unop (_, a) | Is (a, _) -> expr_call_free a
  | SetLit es | ListLit es -> List.for_all expr_call_free es

(* A nested-forall body the planner may fuse: it must not write the store
   (a hash join builds its table before the first body run, so mid-loop
   inserts/deletes would not be seen the way a rescanning nested loop sees
   them) and must not reassign any variable the predicates read (their
   bindings are captured when the join starts). *)
let rec fusable_body ~banned stmts =
  List.for_all
    (fun (s : Ast.stmt) ->
      match s with
      | SPrint es -> List.for_all expr_call_free es
      | SExpr e -> expr_call_free e
      | SAssign (x, e) -> (not (List.mem x banned)) && expr_call_free e
      | SIf (c, t, e) -> expr_call_free c && fusable_body ~banned t && fusable_body ~banned e
      | SSetField _ | SNew _ | SDelete _ | SForall _ | SNewVersion _ | SActivate _
      | SDeactivate _ | SInsert _ | SRemove _ | SReturn _ -> false)
    stmts

(* [forall o ... { forall i ... { body } }] with an unordered pair loop and
   a side-effect-free body is a two-extent join the planner may fuse. *)
let fusable_join (q : Ast.forall) =
  match q.q_body with
  | [ SForall iq ] when q.q_by = None && iq.q_by = None && iq.q_var <> q.q_var ->
      let st_vars =
        List.fold_left expr_vars []
          (Option.to_list q.q_suchthat @ Option.to_list iq.q_suchthat)
      in
      if fusable_body ~banned:(q.q_var :: iq.q_var :: st_vars) iq.q_body then Some iq else None
  | _ -> None

let rec exec_stmt txn env (s : Ast.stmt) =
  let db = txn.tdb in
  let ev e = eval_expr txn env e in
  match s with
  | SExpr (Call (None, "setroot", [ name_e; val_e ])) -> (
      (* Named persistent roots, writable from scripts (used by dumps). *)
      match ev name_e with
      | Value.Str name ->
          let buf = Buffer.create 16 in
          Value.encode buf (ev val_e);
          Store.write txn (Keys.root name) (Buffer.contents buf)
      | v -> err "setroot expects a string name, got %a" Value.pp v)
  | SExpr e -> ignore (ev e)
  | SPrint es ->
      let parts =
        List.map
          (fun e -> match ev e with Value.Str s -> s | v -> Value.to_string v)
          es
      in
      env.print (String.concat " " parts ^ "\n")
  | SAssign (x, e) -> define_var env x (ev e)
  | SSetField (o, f, e) ->
      let oid = as_oid "field update" (ev o) in
      Store.update_fields txn oid [ (f, ev e) ]
  | SNew (tgt, cname, inits) ->
      let cls = Catalog.find_exn db.catalog cname in
      let values = List.map (fun (f, e) -> (f, ev e)) inits in
      let oid = Store.create txn cls values in
      (match tgt with Some x -> define_var env x (Value.Ref oid) | None -> ())
  | SDelete e -> Store.delete_object txn (as_oid "pdelete" (ev e))
  | SForall q -> (
      (* The loop variable is scoped to the loop (shadowing any outer binding
         of the same name); all other assignments made by the body persist,
         so accumulator loops like [total := total + x.age] work. *)
      match fusable_join q with
      | Some iq ->
          (* Two-extent join: hand both loops to the join planner, which may
             fuse them (deref/membership link) or hash-join instead of
             rescanning the inner extent per outer row. *)
          let souter = List.assoc_opt q.q_var env.vars in
          let sinner = List.assoc_opt iq.q_var env.vars in
          Query.run_join db ~txn ~env:env.vars
            ~outer:(q.q_var, q.q_cls, q.q_deep)
            ~inner:(iq.q_var, iq.q_cls, iq.q_deep)
            ?outer_suchthat:q.q_suchthat ?inner_suchthat:iq.q_suchthat
            (fun o i ->
              define_var env q.q_var (Value.Ref o);
              define_var env iq.q_var (Value.Ref i);
              exec_stmts txn env iq.q_body);
          List.iter
            (fun (name, saved) ->
              env.vars <- List.remove_assoc name env.vars;
              match saved with Some v -> define_var env name v | None -> ())
            [ (iq.q_var, sinner); (q.q_var, souter) ]
      | None ->
          let outer = List.assoc_opt q.q_var env.vars in
          Query.run db ~txn ~env:env.vars ~var:q.q_var ~cls:q.q_cls ~deep:q.q_deep
            ?suchthat:q.q_suchthat ?by:q.q_by
            (fun oid ->
              define_var env q.q_var (Value.Ref oid);
              exec_stmts txn env q.q_body);
          env.vars <- List.remove_assoc q.q_var env.vars;
          (match outer with Some v -> define_var env q.q_var v | None -> ()))
  | SIf (c, then_, else_) ->
      if Eval.truthy (ev c) then exec_stmts txn env then_ else exec_stmts txn env else_
  | SNewVersion e -> ignore (Store.new_version txn (as_oid "newversion" (ev e)))
  | SActivate (tgt, recv, name, args) ->
      let oid = as_oid "activate" (ev recv) in
      let tid = Triggers.activate txn oid name (List.map ev args) in
      (match tgt with Some x -> define_var env x (Value.Int tid) | None -> ())
  | SDeactivate e -> (
      match ev e with
      | Value.Int tid -> Triggers.deactivate txn tid
      | v -> err "deactivate expects a trigger id, got %a" Value.pp v)
  | SInsert (e, f, obj) ->
      let oid = as_oid "insert into" (ev obj) in
      let v = ev e in
      (match Store.get_field db (Some txn) oid f with
      | Some (Value.VSet _ as s) -> Store.update_fields txn oid [ (f, Value.set_add v s) ]
      | Some (Value.VList vs) -> Store.update_fields txn oid [ (f, Value.VList (vs @ [ v ])) ]
      | Some other -> err "insert into %s: not a set or list (%a)" f Value.pp other
      | None -> err "insert into: no field %s" f)
  | SRemove (e, f, obj) ->
      let oid = as_oid "remove from" (ev obj) in
      let v = ev e in
      (match Store.get_field db (Some txn) oid f with
      | Some (Value.VSet _ as s) -> Store.update_fields txn oid [ (f, Value.set_remove v s) ]
      | Some (Value.VList vs) ->
          Store.update_fields txn oid
            [ (f, Value.VList (List.filter (fun x -> not (Value.equal x v)) vs)) ]
      | Some other -> err "remove from %s: not a set or list (%a)" f Value.pp other
      | None -> err "remove from: no field %s" f)
  | SReturn e -> raise (Returned (ev e))

and exec_stmts txn env ss = List.iter (exec_stmt txn env) ss
