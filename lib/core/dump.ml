module Oid = Ode_model.Oid
module Value = Ode_model.Value
module Schema = Ode_model.Schema
module Catalog = Ode_model.Catalog
open Types

let var_of_oid (oid : Oid.t) = Printf.sprintf "_o%d_%d" oid.cls oid.num

(* Render a value as a parseable surface-language expression; references
   become the per-object variables bound earlier in the script. *)
let rec value_expr (v : Value.t) =
  match v with
  | Null -> "null"
  | Int n -> if n < 0 then Printf.sprintf "(0 - %d)" (-n) else string_of_int n
  | Float f ->
      let s = Printf.sprintf "%.17g" f in
      if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"
  | Bool b -> if b then "true" else "false"
  | Str s -> Ode_lang.Pp.expr_to_string (Ode_lang.Ast.Str s)
  | Ref oid -> var_of_oid oid
  | Vref vr -> Printf.sprintf "vref(%s, %d)" (var_of_oid vr.oid) vr.ver
  | VSet vs -> "{" ^ String.concat ", " (List.map value_expr vs) ^ "}"
  | VList vs -> "[" ^ String.concat ", " (List.map value_expr vs) ^ "]"

(* Fields whose value is representable without forward references in pass 1
   (scalars); refs, vrefs and containers move to pass 2 updates. *)
let scalar (v : Value.t) =
  match v with Null | Int _ | Float _ | Bool _ | Str _ -> true | Ref _ | Vref _ | VSet _ | VList _ -> false

let export db =
  if Hashtbl.length db.wtxns > 0 then invalid_arg "dump: export inside a transaction";
  let b = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  out "// ode-ml logical dump";
  (* 1. Schema, in definition order (parents precede children). *)
  List.iter
    (fun (c : Schema.cls) -> out "%s" (Ode_lang.Pp.class_to_string (Schema.to_decl c)))
    (Catalog.all db.catalog);
  List.iter
    (fun (c : Schema.cls) -> if c.cluster_created then out "create cluster %s;" c.name)
    (Catalog.all db.catalog);
  List.iter (fun (cls, field) -> out "create index on %s(%s);" cls field) (Catalog.indexes db.catalog);
  (* 2. Pass 1: create every object (version 0 scalar state). *)
  let objects = ref [] in
  List.iter
    (fun (c : Schema.cls) ->
      Kv.iter_prefix db (Keys.header_prefix_class c.id) (fun key payload ->
          let oid = Keys.oid_of_header_key key in
          objects := (oid, Store.decode_header payload) :: !objects;
          true))
    (Catalog.all db.catalog);
  let objects = List.rev !objects in
  List.iter
    (fun ((oid : Oid.t), (h : Store.header)) ->
      let cls = Option.get (Catalog.find_by_id db.catalog h.hcls) in
      let v0 = List.hd (List.sort Int.compare h.hversions) in
      let fields =
        Option.value (Store.get_fields_v db None { oid; ver = v0 }) ~default:[]
      in
      let inits =
        List.filter_map
          (fun (n, v) -> if scalar v then Some (Printf.sprintf "%s = %s" n (value_expr v)) else None)
          fields
      in
      out "%s := pnew %s { %s };" (var_of_oid oid) cls.name (String.concat ", " inits))
    objects;
  (* 3. Pass 2: reference/container fields of the first version, then the
     whole version history in order. *)
  List.iter
    (fun ((oid : Oid.t), (h : Store.header)) ->
      let versions = List.sort Int.compare h.hversions in
      let v0 = List.hd versions in
      let var = var_of_oid oid in
      let emit_fields ?(only_nonscalar = false) ver =
        let fields = Option.value (Store.get_fields_v db None { oid; ver }) ~default:[] in
        List.iter
          (fun (n, v) ->
            if (not only_nonscalar) || not (scalar v) then
              if v <> Value.Null || not only_nonscalar then
                out "%s.%s := %s;" var n (value_expr v))
          fields
      in
      emit_fields ~only_nonscalar:true v0;
      List.iter
        (fun ver ->
          out "newversion %s;" var;
          emit_fields ver)
        (List.tl versions);
      (* Re-point 'current' if it is not the newest version (a later version
         was deleted after a promotion we cannot replay; the dump recreates
         contiguous version numbers, so we only preserve the *current
         state*: replaying [versions] already leaves the newest as current,
         matching h.hcurrent = max when no middle promotion happened. When
         h.hcurrent is not the maximum, materialize its state once more. *)
      let newest = List.fold_left max v0 versions in
      if h.hcurrent <> newest then begin
        out "// note: source object's current version was %d, not the newest" h.hcurrent;
        let fields =
          Option.value (Store.get_fields_v db None { oid; ver = h.hcurrent }) ~default:[]
        in
        List.iter (fun (n, v) -> out "%s.%s := %s;" var n (value_expr v)) fields
      end)
    objects;
  (* 4. Named roots. *)
  Kv.iter_prefix db "R" (fun key payload ->
      let name = String.sub key 1 (String.length key - 1) in
      let v = Value.decode (Ode_util.Codec.cursor payload) in
      out "// root %s" name;
      out "_root := %s; " (value_expr v);
      out "setroot(\"%s\", _root);" name;
      true);
  (* 5. Trigger activations (active ones only; ids are reassigned). *)
  Kv.iter_prefix db Keys.trigger_prefix (fun _ payload ->
      let a = Triggers.decode_activation payload in
      if a.active && a.deadline = None then
        out "activate %s.%s(%s);" (var_of_oid a.aoid) a.tname
          (String.concat ", " (List.map value_expr a.targs));
      true);
  (* 6. Planner statistics: replaying `analyze` at the end re-collects
     them over the just-imported objects, so the restored store plans
     like the source did. *)
  if db.stats.st_analyzed then out "analyze;";
  Buffer.contents b

let export_to_file db path =
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (export db))

(* A minimal script driver (DDL + autocommitted statements): dumps contain
   no transaction control, explain, or clock statements. *)
let import db script =
  let env = Interp.env ~print:ignore () in
  List.iter
    (fun (top : Ode_lang.Ast.top) ->
      match top with
      | TClass decl -> ignore (Database.define_class db decl)
      | TCreateCluster c -> Database.create_cluster db c
      | TCreateIndex (c, f) -> Database.create_index db ~cls:c ~field:f
      | TStmt s -> Database.with_txn db (fun txn -> Interp.exec_stmt txn env s)
      | TAnalyze -> ignore (Database.analyze db)
      | TBegin | TCommit | TAbort | TShowClasses | TShowStats | TVerify | TDump | TLoad _
      | TExplain _ | TAdvance _ ->
          invalid_arg "dump: unexpected statement in dump script")
    (Ode_lang.Parser.program script)
